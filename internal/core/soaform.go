package core

import (
	"macroop/internal/config"
	"macroop/internal/isa"
)

// renameAndInsert performs the rename-stage work for one uop: MOP
// formation (claiming a tail via the MOP pointer, or joining the head's
// entry as the tail), dependence translation into entry/op references,
// and issue queue insertion. Cycle-exact port of the entry layout's
// form.go — every branch and counter mirrors it.
func (c *soaCore) renameAndInsert(u uint32) {
	ar := &c.ar
	ar.insertedCycle[u] = c.cycle
	if c.tracer != nil {
		c.trace(u, StageInsert, c.cycle)
	}

	// Member side of a formed MOP: join the head's entry. The claim ref
	// is generation-guarded: a stale claim (head retired and recycled)
	// fails valid() exactly where the entry layout sees h.entry == nil.
	if r := ar.claimedBy[u]; r.idx != nilHandle && ar.valid(r) &&
		ar.entry[r.idx] != nil && ar.entry[r.idx].PendingTail() {
		h := r.idx
		he := ar.entry[h]
		specs, prods := c.srcSpecs(u, he)
		// Chain links beyond a pair need a transitive cycle check: one of
		// this member's producers may itself (transitively) wait on the
		// merged entry, which would deadlock. The pair case is already
		// covered by detection's conservative heuristic.
		if ar.expectOps[h] > 2 {
			for _, sp := range specs {
				if sp.Prod != nil && c.sch.DependsOn(sp.Prod, he) {
					c.demote(h)
					c.removePendingHead(r)
					c.cnt.formCycleAborts++
					break
				}
			}
			if ar.claimedBy[u].idx == nilHandle {
				// demote unclaimed us: insert as a normal instruction.
				c.renameAndInsert(u)
				return
			}
		}
		ar.attachedOps[h]++
		last := ar.attachedOps[h] >= ar.expectOps[h]-1
		c.sch.AttachOp(he, c.schedOpInfo(u), specs, last)
		ar.entry[u], ar.opIdx[u] = he, int32(ar.attachedOps[h])
		// The head owns the member's producer references (released at the
		// head's commit, after the last-arriving filter has read them).
		tb := int(h) * tailProdStride
		for _, p := range prods {
			if p.entry != nil {
				p.entry.Retain()
			}
			ar.tailProds[tb+int(ar.nTailProds[h])] = p
			ar.nTailProds[h]++
		}
		ar.members[int(h)*memberStride+int(ar.nMembers[h])] = u
		ar.nMembers[h]++
		c.finishRename(u)
		if last {
			c.removePendingHead(r)
			if c.hooks != nil {
				c.hookMOPFormed(h)
			}
			c.cnt.mopsFormed++
			if ar.flags[u]&fMOPDep != 0 {
				c.cnt.depMOPsFormed++
			} else {
				c.cnt.indepMOPsFormed++
			}
		}
		return
	}
	ar.claimedBy[u] = nilRef // stale claim (head was demoted): insert normally

	pending := false
	if c.cfg.Sched == config.SchedMOP {
		pending = c.tryClaimTail(u)
	}
	specs, prods := c.srcSpecs(u, nil)
	e := c.sch.Insert(c.schedOpInfo(u), specs, pending)
	ar.members[int(u)*memberStride] = u
	ar.nMembers[u] = 1
	e.UserIdx = packUser(u, ar.gen[u]) // head back-link; an integer, so no allocation
	ar.entry[u], ar.opIdx[u] = e, 0
	hb := int(u) * headProdStride
	for _, p := range prods {
		if p.entry != nil {
			p.entry.Retain()
		}
		ar.headProds[hb+int(ar.nHeadProds[u])] = p
		ar.nHeadProds[u]++
	}
	if pending {
		c.pendingHeads = append(c.pendingHeads, ar.ref(u))
	}
	c.finishRename(u)
}

// finishRename records the store-data producer and updates the rename
// table with this uop's destination (dependence translation: both MOP ops
// map to the same entry, Figure 10).
func (c *soaCore) finishRename(u uint32) {
	ar := &c.ar
	if dr := ar.dataReg[u]; dr != isa.NoReg && dr != isa.R0 {
		ar.dataProd[u] = c.rename[dr]
		if ar.dataProd[u].entry != nil {
			ar.dataProd[u].entry.Retain() // released at u's commit
		}
	}
	if ar.meta[u]&metaWritesReg != 0 {
		// Retain the new producer before releasing the displaced one: when
		// both ops of a MOP write the same register they share one entry,
		// and the swap must not drop its refcount to zero in between.
		e := ar.entry[u]
		e.Retain()
		dest := ar.d[u].Inst.Dest
		if old := c.rename[dest].entry; old != nil {
			c.sch.Release(old)
		}
		c.rename[dest] = prodRef{entry: e, opIdx: int(ar.opIdx[u])}
	}
}

// tryClaimTail consults the MOP pointer for u and, when the designated
// tail is already fetched and the control flow matches the pointer,
// claims it; with the chained-MOP extension enabled it keeps following
// pointers up to MaxMOPSize members. Returns whether u was inserted as a
// pending MOP head.
func (c *soaCore) tryClaimTail(u uint32) bool {
	ar := &c.ar
	maxOps := c.cfg.MOP.MaxMOPSize
	members := append(c.claimBuf[:0], u)
	cur := u
	for len(members) < maxOps {
		t, ok := c.nextChainMember(cur, len(members) == 1)
		if !ok {
			break
		}
		members = append(members, t)
		cur = t
	}
	if len(members) < 2 {
		c.claimBuf = members[:0]
		return false
	}
	ur := ar.ref(u)
	for i, t := range members[1:] {
		ar.claimedBy[t] = ur
		ar.flags[t] |= fMOPTail
		prev := members[i] // the member t's pointer hung off
		pInst := &ar.d[prev].Inst
		tInst := &ar.d[t].Inst
		dep := pInst.WritesReg() &&
			(tInst.Src1 == pInst.Dest || tInst.Src2 == pInst.Dest)
		if dep {
			ar.flags[t] |= fMOPDep
		} else {
			ar.flags[t] &^= fMOPDep
		}
		if i == 0 {
			if dep {
				ar.flags[u] |= fMOPDep
			} else {
				ar.flags[u] &^= fMOPDep
			}
		}
	}
	ar.flags[u] |= fMOPHead
	ar.expectOps[u] = uint8(len(members))
	ar.tailPC[u] = int32(ar.d[members[1]].PC)
	c.claimBuf = members[:0]
	return true
}

// nextChainMember resolves one MOP pointer link from cur, validating the
// insertion-window and control-flow constraints.
func (c *soaCore) nextChainMember(cur uint32, countStats bool) (uint32, bool) {
	ar := &c.ar
	ptr, tailPC, ok := c.ptab.Lookup(ar.d[cur].PC, c.cycle)
	if !ok {
		return nilHandle, false
	}
	tailIdx := ar.streamIdx[cur] + int64(ptr.Offset)
	if tailIdx >= c.nextStreamIdx {
		// Tail not even fetched: it cannot be in this or the next insert
		// group (Section 5.2.3's insertion policy).
		if countStats {
			c.cnt.formMissedScope++
		}
		return nilHandle, false
	}
	tr := c.ring[int(tailIdx)&ringMask]
	if tr.idx == nilHandle || !ar.valid(tr) {
		if countStats {
			c.cnt.formMissedScope++
		}
		return nilHandle, false
	}
	t := tr.idx
	if ar.streamIdx[t] != tailIdx || ar.flags[t]&fInserted != 0 ||
		ar.claimedBy[t].idx != nilHandle || ar.flags[t]&fMOPHead != 0 {
		if countStats {
			c.cnt.formMissedScope++
		}
		return nilHandle, false
	}
	if ar.d[t].PC != tailPC {
		// Different dynamic path than at detection time.
		if countStats {
			c.cnt.formCtrlMiss++
		}
		return nilHandle, false
	}
	ctrl, flowOK := c.controlClassBetween(ar.streamIdx[cur], tailIdx)
	if !flowOK || ctrl != ptr.Control {
		if countStats {
			c.cnt.formCtrlMiss++
		}
		return nilHandle, false
	}
	return t, true
}

// controlClassBetween reclassifies the control flow between two fused
// stream positions with the same rules as MOP detection: no indirect
// jumps, at most one control instruction if any is taken; the returned
// bit records a single taken direct control.
func (c *soaCore) controlClassBetween(from, to int64) (controlBit, ok bool) {
	ar := &c.ar
	nControl, nTaken := 0, 0
	for i := from; i < to; i++ {
		x := c.ring[int(i)&ringMask]
		if x.idx == nilHandle || !ar.valid(x) || ar.streamIdx[x.idx] != i {
			return false, false // fell out of the formation window
		}
		m := ar.meta[x.idx]
		if m&metaBranch == 0 {
			continue
		}
		if m&metaIndirect != 0 {
			return false, false
		}
		nControl++
		if ar.d[x.idx].Taken {
			nTaken++
		}
	}
	switch {
	case nTaken == 0:
		return false, true
	case nTaken == 1 && nControl == 1:
		return true, true
	default:
		return false, false
	}
}

// afterInsertGroup runs once per non-empty insert group: it feeds the MOP
// detector with the renamed group and demotes pending heads whose tail
// missed the same-or-next-group insertion window.
func (c *soaCore) afterInsertGroup(group []uint32) {
	ar := &c.ar
	if c.det != nil {
		// The detector copies each DynInst into its own slot value before
		// returning, so handing it scratch pointers into arena slots is
		// safe.
		dyns := c.dynsBuf[:0]
		for _, u := range group {
			dyns = append(dyns, &ar.d[u])
		}
		c.det.Observe(c.cycle, dyns)
		c.dynsBuf = dyns[:0]
	}
	kept := c.pendingHeads[:0]
	for _, hr := range c.pendingHeads {
		// A stale ref means the head retired and its slot was recycled —
		// the entry layout's "h.entry == nil" drop case.
		if !ar.valid(hr) {
			continue
		}
		h := hr.idx
		if ar.entry[h] == nil || !ar.entry[h].PendingTail() {
			continue // tail attached (or otherwise settled)
		}
		// See entryCore.afterInsertGroup: the demotion here is a safety
		// net against pathological front-end disruptions.
		if c.cycle-ar.insertedCycle[h] > pendingHeadTimeout {
			c.demote(h)
			continue
		}
		kept = append(kept, hr)
	}
	c.pendingHeads = kept
}

// demote cancels a pending MOP head: the entry proceeds with whatever
// members were attached (possibly just the head), and members that never
// arrived are unclaimed so they insert normally (Sections 5.2.3/5.3.2).
func (c *soaCore) demote(h uint32) {
	ar := &c.ar
	c.sch.CancelTail(ar.entry[h])
	c.cnt.mopsDemoted++
	if ar.attachedOps[h] == 0 {
		ar.flags[h] &^= fMOPHead | fMOPDep
	} else {
		// The entry proceeds as a smaller multi-op group: report it so
		// commit-side atomicity checks know its final membership.
		if c.hooks != nil {
			c.hookMOPFormed(h)
		}
	}
	// Unclaim chain members still waiting in the ring.
	hr := ar.ref(h)
	for i := 0; i < ringSize; i++ {
		t := c.ring[i]
		if t.idx == nilHandle {
			continue
		}
		if ar.claimedBy[t.idx] == hr && ar.flags[t.idx]&fInserted == 0 {
			ar.claimedBy[t.idx] = nilRef
			ar.flags[t.idx] &^= fMOPTail | fMOPDep
		}
	}
}

func (c *soaCore) removePendingHead(h uopRef) {
	for i, x := range c.pendingHeads {
		if x == h {
			c.pendingHeads = append(c.pendingHeads[:i], c.pendingHeads[i+1:]...)
			return
		}
	}
}

// lastArrivingFilter implements Section 5.4.2: if the committed MOP's
// issue was triggered by a tail-side operand arriving after every
// head-side operand, the pointer is deleted (and the pair blacklisted) so
// detection finds an alternative pairing.
func (c *soaCore) lastArrivingFilter(h uint32) {
	ar := &c.ar
	e := ar.entry[h]
	if e == nil || !e.IsMOP() || e.NumOps() != 2 {
		return
	}
	arrival := func(prods []prodRef) int64 {
		var m int64
		for _, p := range prods {
			if p.entry == nil {
				continue
			}
			if a := p.entry.ActualReady(p.opIdx); a > m && a < (1<<61) {
				m = a
			}
		}
		return m
	}
	hb := int(h) * headProdStride
	tb := int(h) * tailProdStride
	headMax := arrival(ar.headProds[hb : hb+int(ar.nHeadProds[h])])
	tailMax := arrival(ar.tailProds[tb : tb+int(ar.nTailProds[h])])
	if tailMax > headMax {
		c.ptab.Delete(ar.d[h].PC, int(ar.tailPC[h]))
		c.cnt.filterDeletes++
	}
}

// accountMOP classifies a committed instruction for Figure 13.
func (c *soaCore) accountMOP(u uint32) {
	m := c.ar.meta[u]
	switch {
	case m&metaMOPCand == 0:
		c.cnt.notCandidate++
	case c.grouped(u) && c.ar.flags[u]&fMOPDep == 0:
		c.cnt.indepGrouped++
	case c.grouped(u) && m&metaValueGen != 0:
		c.cnt.valueGenGrouped++
	case c.grouped(u):
		c.cnt.nonValueGenGrouped++
	default:
		c.cnt.candNotGrouped++
	}
}

// ---------------------------------------------------------------------
// Hook and trace forwarding (handle-typed twins of hooks.go/trace.go).

func (c *soaCore) trace(u uint32, stage Stage, cycle int64) {
	if c.tracer == nil {
		return
	}
	d := &c.ar.d[u]
	c.tracer.Event(d.Seq, d.PC, d.Inst.String(), stage, cycle)
}

// hookIssue forwards a grant to the hooks, capturing the first error.
func (c *soaCore) hookIssue(u uint32, cycle int64) {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	c.hookErr = c.hooks.OnIssue(&IssueEvent{
		Cycle:   cycle,
		Seq:     c.ar.d[u].Seq,
		EntryID: c.ar.entry[u].ID(),
		OpIdx:   int(c.ar.opIdx[u]),
	})
}

// hookCommit forwards a retirement to the hooks. It must run before
// retire severs the uop's producer references, while commitReadyAt can
// still see the store-data producer.
func (c *soaCore) hookCommit(u uint32) {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	e := c.ar.entry[u]
	c.hookErr = c.hooks.OnCommit(&CommitEvent{
		Cycle:      c.cycle,
		Dyn:        &c.ar.d[u],
		DataReg:    c.ar.dataReg[u],
		EntryID:    e.ID(),
		OpIdx:      int(c.ar.opIdx[u]),
		NumOps:     e.NumOps(),
		IsMOP:      e.IsMOP(),
		EntryFinal: e.Final(),
		ReadyAt:    c.commitReadyAt(u),
	})
}

// hookMOPFormed reports a closed (or demoted-but-nonempty) macro-op.
func (c *soaCore) hookMOPFormed(h uint32) {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	ar := &c.ar
	mb := int(h) * memberStride
	seqs := make([]int64, ar.nMembers[h])
	for i := range seqs {
		seqs[i] = ar.d[ar.members[mb+i]].Seq
	}
	c.hookErr = c.hooks.OnMOPFormed(ar.entry[h].ID(), seqs)
}

func (c *soaCore) hookCycle() {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	c.hookErr = c.hooks.OnCycle(c.cycle, c.sch.Occupied())
}
