package core

import (
	"macroop/internal/config"
	"macroop/internal/isa"
)

// renameAndInsert performs the rename-stage work for one uop: MOP
// formation (claiming a tail via the MOP pointer, or joining the head's
// entry as the tail), dependence translation into entry/op references,
// and issue queue insertion.
func (c *entryCore) renameAndInsert(u *uop) {
	u.insertedCycle = c.cycle
	c.trace(u, StageInsert, c.cycle)

	// Member side of a formed MOP: join the head's entry.
	if h := u.claimedBy; h != nil && h.entry != nil && h.entry.PendingTail() {
		specs, prods := c.srcSpecs(u, h.entry)
		// Chain links beyond a pair need a transitive cycle check: one of
		// this member's producers may itself (transitively) wait on the
		// merged entry, which would deadlock. The pair case is already
		// covered by detection's conservative heuristic.
		if h.expectOps > 2 {
			for _, sp := range specs {
				if sp.Prod != nil && c.sch.DependsOn(sp.Prod, h.entry) {
					c.demote(h)
					c.removePendingHead(h)
					c.cnt.formCycleAborts++
					break
				}
			}
			if u.claimedBy == nil {
				// demote unclaimed us: insert as a normal instruction.
				c.renameAndInsert(u)
				return
			}
		}
		h.attachedOps++
		last := h.attachedOps >= h.expectOps-1
		c.sch.AttachOp(h.entry, u.schedOpInfo(c.loadAssumed()), specs, last)
		u.entry, u.opIdx = h.entry, h.attachedOps
		// The head owns the member's producer references (released at the
		// head's commit, after the last-arriving filter has read them).
		for _, p := range prods {
			if p.entry != nil {
				p.entry.Retain()
			}
			h.tailProds = append(h.tailProds, p)
		}
		h.members = append(h.members, u)
		c.finishRename(u)
		if last {
			c.removePendingHead(h)
			c.hookMOPFormed(h)
			c.cnt.mopsFormed++
			if u.mopDep {
				c.cnt.depMOPsFormed++
			} else {
				c.cnt.indepMOPsFormed++
			}
		}
		return
	}
	u.claimedBy = nil // stale claim (head was demoted): insert normally

	pending := false
	if c.cfg.Sched == config.SchedMOP {
		pending = c.tryClaimTail(u)
	}
	specs, prods := c.srcSpecs(u, nil)
	e := c.sch.Insert(u.schedOpInfo(c.loadAssumed()), specs, pending)
	u.members = append(u.membersArr[:0], u)
	e.UserData = u // head back-pointer; a bare pointer in the interface never allocates
	u.entry, u.opIdx = e, 0
	u.headProds = u.headProdsArr[:0]
	u.tailProds = u.tailProdsArr[:0] // filled by attaching chain members
	for _, p := range prods {
		if p.entry != nil {
			p.entry.Retain()
		}
		u.headProds = append(u.headProds, p)
	}
	if pending {
		c.pendingHeads = append(c.pendingHeads, u)
	}
	c.finishRename(u)
}

// finishRename records the store-data producer and updates the rename
// table with this uop's destination (dependence translation: both MOP ops
// map to the same entry, Figure 10).
func (c *entryCore) finishRename(u *uop) {
	if u.dataReg != isa.NoReg && u.dataReg != isa.R0 {
		u.dataProd = c.rename[u.dataReg]
		if u.dataProd.entry != nil {
			u.dataProd.entry.Retain() // released at u's commit
		}
	}
	if u.d.Inst.WritesReg() {
		// Retain the new producer before releasing the displaced one: when
		// both ops of a MOP write the same register they share one entry,
		// and the swap must not drop its refcount to zero in between.
		u.entry.Retain()
		if old := c.rename[u.d.Inst.Dest].entry; old != nil {
			c.sch.Release(old)
		}
		c.rename[u.d.Inst.Dest] = prodRef{entry: u.entry, opIdx: u.opIdx}
	}
}

// tryClaimTail consults the MOP pointer for u and, when the designated
// tail is already fetched and the control flow matches the pointer,
// claims it; with the chained-MOP extension enabled it keeps following
// pointers up to MaxMOPSize members. Returns whether u was inserted as a
// pending MOP head.
func (c *entryCore) tryClaimTail(u *uop) bool {
	maxOps := c.cfg.MOP.MaxMOPSize
	members := append(c.claimBuf[:0], u)
	cur := u
	for len(members) < maxOps {
		t, ok := c.nextChainMember(cur, len(members) == 1)
		if !ok {
			break
		}
		members = append(members, t)
		cur = t
	}
	if len(members) < 2 {
		return false
	}
	for i, t := range members[1:] {
		t.claimedBy = u
		t.mopTail = true
		prev := members[i] // the member t's pointer hung off
		dep := prev.d.Inst.WritesReg() &&
			(t.d.Inst.Src1 == prev.d.Inst.Dest || t.d.Inst.Src2 == prev.d.Inst.Dest)
		t.mopDep = dep
		if i == 0 {
			u.mopDep = dep
		}
	}
	u.mopHead = true
	u.expectOps = len(members)
	u.tailPC = members[1].d.PC
	c.claimBuf = members[:0]
	return true
}

// nextChainMember resolves one MOP pointer link from cur, validating the
// insertion-window and control-flow constraints.
func (c *entryCore) nextChainMember(cur *uop, countStats bool) (*uop, bool) {
	ptr, tailPC, ok := c.ptab.Lookup(cur.d.PC, c.cycle)
	if !ok {
		return nil, false
	}
	tailIdx := cur.streamIdx + int64(ptr.Offset)
	if tailIdx >= c.nextStreamIdx {
		// Tail not even fetched: it cannot be in this or the next insert
		// group (Section 5.2.3's insertion policy).
		if countStats {
			c.cnt.formMissedScope++
		}
		return nil, false
	}
	t := c.ring[tailIdx%ringSize]
	if t == nil || t.streamIdx != tailIdx || t.inserted || t.claimedBy != nil || t.mopHead {
		if countStats {
			c.cnt.formMissedScope++
		}
		return nil, false
	}
	if t.d.PC != tailPC {
		// Different dynamic path than at detection time.
		if countStats {
			c.cnt.formCtrlMiss++
		}
		return nil, false
	}
	ctrl, flowOK := c.controlClassBetween(cur.streamIdx, tailIdx)
	if !flowOK || ctrl != ptr.Control {
		if countStats {
			c.cnt.formCtrlMiss++
		}
		return nil, false
	}
	return t, true
}

// controlClassBetween reclassifies the control flow between two fused
// stream positions with the same rules as MOP detection: no indirect
// jumps, at most one control instruction if any is taken; the returned
// bit records a single taken direct control.
func (c *entryCore) controlClassBetween(from, to int64) (controlBit, ok bool) {
	nControl, nTaken := 0, 0
	for i := from; i < to; i++ {
		x := c.ring[i%ringSize]
		if x == nil || x.streamIdx != i {
			return false, false // fell out of the formation window
		}
		op := x.op()
		if !op.IsControl() {
			continue
		}
		if op.IsIndirect() {
			return false, false
		}
		nControl++
		if x.d.Taken {
			nTaken++
		}
	}
	switch {
	case nTaken == 0:
		return false, true
	case nTaken == 1 && nControl == 1:
		return true, true
	default:
		return false, false
	}
}

// afterInsertGroup runs once per non-empty insert group: it feeds the MOP
// detector with the renamed group and demotes pending heads whose tail
// missed the same-or-next-group insertion window.
func (c *entryCore) afterInsertGroup(group []*uop) {
	if c.det != nil {
		// The detector copies each DynInst into its own slot value before
		// returning, so handing it scratch pointers into pooled uops is
		// safe.
		dyns := c.dynsBuf[:0]
		for _, u := range group {
			dyns = append(dyns, &u.d)
		}
		c.det.Observe(c.cycle, dyns)
		c.dynsBuf = dyns[:0]
	}
	kept := c.pendingHeads[:0]
	for _, h := range c.pendingHeads {
		if h.entry == nil || !h.entry.PendingTail() {
			continue // tail attached (or otherwise settled)
		}
		// Members are claimed only when already fetched (the model's
		// equivalent of the same-or-consecutive-stage window), so they
		// arrive within the next insert groups even under ROB or queue
		// backpressure — the stage latches hold. The demotion here is a
		// safety net against pathological front-end disruptions.
		if c.cycle-h.insertedCycle > pendingHeadTimeout {
			c.demote(h)
			continue
		}
		kept = append(kept, h)
	}
	c.pendingHeads = kept
}

// pendingHeadTimeout bounds how long a MOP head may wait for its claimed
// members before being demoted to a single-instruction entry.
const pendingHeadTimeout = 40

// demote cancels a pending MOP head: the entry proceeds with whatever
// members were attached (possibly just the head), and members that never
// arrived are unclaimed so they insert normally (Sections 5.2.3/5.3.2).
func (c *entryCore) demote(h *uop) {
	c.sch.CancelTail(h.entry)
	c.cnt.mopsDemoted++
	if h.attachedOps == 0 {
		h.mopHead = false
		h.mopDep = false
	} else {
		// The entry proceeds as a smaller multi-op group: report it so
		// commit-side atomicity checks know its final membership.
		c.hookMOPFormed(h)
	}
	// Unclaim chain members still waiting in the ring.
	for i := int64(0); i < ringSize; i++ {
		if t := c.ring[i]; t != nil && t.claimedBy == h && !t.inserted {
			t.claimedBy = nil
			t.mopTail = false
			t.mopDep = false
		}
	}
}

func (c *entryCore) removePendingHead(h *uop) {
	for i, x := range c.pendingHeads {
		if x == h {
			c.pendingHeads = append(c.pendingHeads[:i], c.pendingHeads[i+1:]...)
			return
		}
	}
}

// lastArrivingFilter implements Section 5.4.2: if the committed MOP's
// issue was triggered by a tail-side operand arriving after every
// head-side operand, the pointer is deleted (and the pair blacklisted) so
// detection finds an alternative pairing.
func (c *entryCore) lastArrivingFilter(h *uop) {
	if h.entry == nil || !h.entry.IsMOP() || h.entry.NumOps() != 2 {
		return
	}
	arrival := func(prods []prodRef) int64 {
		var m int64
		for _, p := range prods {
			if p.entry == nil {
				continue
			}
			if ar := p.entry.ActualReady(p.opIdx); ar > m && ar < (1<<61) {
				m = ar
			}
		}
		return m
	}
	headMax := arrival(h.headProds)
	tailMax := arrival(h.tailProds)
	if tailMax > headMax {
		c.ptab.Delete(h.d.PC, h.tailPC)
		c.cnt.filterDeletes++
	}
}

// accountMOP classifies a committed instruction for Figure 13.
func (c *entryCore) accountMOP(u *uop) {
	op := u.op()
	switch {
	case !op.IsMOPCandidate():
		c.cnt.notCandidate++
	case u.grouped() && !u.mopDep:
		c.cnt.indepGrouped++
	case u.grouped() && op.IsValueGenCandidate():
		c.cnt.valueGenGrouped++
	case u.grouped():
		c.cnt.nonValueGenGrouped++
	default:
		c.cnt.candNotGrouped++
	}
}
