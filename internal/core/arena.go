package core

import (
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/sched"
)

// nilHandle is the "no uop" sentinel for arena handles.
const nilHandle = ^uint32(0)

// uopRef is a generation-guarded arena handle. Rings and claim links
// store refs rather than bare handles so a recycled slot is detectable:
// a ref is live only while its generation matches the slot's.
type uopRef struct {
	idx uint32
	gen uint32
}

// nilRef is the zero reference. (The zero *value* of uopRef would be
// {0, 0} — a plausible live handle — so every ref-valued slot must be
// initialised to nilRef explicitly.)
var nilRef = uopRef{idx: nilHandle}

// Per-handle flag bits (uopArena.flags).
const (
	fMispredicted uint16 = 1 << iota
	fInserted
	fMOPHead
	fMOPTail
	fMOPDep
	fMemProbed
	fCommitted
)

// Per-handle metadata word (uopArena.meta), packed once at fetch so hot
// predicates never re-derive from the isa.Op table:
//
//	bit 0-6   opcode/instruction predicates
//	bit 8-15  raw op latency (pre loadAssumed)
//	bit 16-23 functional-unit class
const (
	metaLoad uint32 = 1 << iota
	metaStore
	metaBranch // any control-flow op
	metaIndirect
	metaWritesReg
	metaMOPCand
	metaValueGen
)

const (
	metaLatShift = 8
	metaFUShift  = 16
)

// opMetaTab memoizes the opcode-dependent meta bits per isa.Op so
// packMeta is two loads instead of a chain of predicate calls per fetch.
// Only metaWritesReg depends on the instruction, not the opcode.
var opMetaTab = func() [isa.NumOps]uint32 {
	var tab [isa.NumOps]uint32
	for i := range tab {
		op := isa.Op(i)
		m := uint32(op.Latency())<<metaLatShift | uint32(op.FUClass())<<metaFUShift
		if op.IsLoad() {
			m |= metaLoad
		}
		if op == isa.STA {
			m |= metaStore
		}
		if op.IsControl() {
			m |= metaBranch
		}
		if op.IsIndirect() {
			m |= metaIndirect
		}
		if op.IsMOPCandidate() {
			m |= metaMOPCand
		}
		if op.IsValueGenCandidate() {
			m |= metaValueGen
		}
		tab[i] = m
	}
	return tab
}()

// packMeta memoizes the hot per-instruction predicates into one word.
func packMeta(inst isa.Instruction) uint32 {
	m := opMetaTab[inst.Op]
	if inst.WritesReg() {
		m |= metaWritesReg
	}
	return m
}

// Strides of the fixed per-handle segments in the shared members /
// headProds / tailProds arrays (the SoA equivalent of the uop struct's
// embedded backing arrays).
const (
	memberStride   = sched.MaxMOPOps
	headProdStride = 2
	tailProdStride = 2 * (sched.MaxMOPOps - 1)
)

// uopArena holds every in-flight instruction as parallel arrays indexed
// by uint32 handle. Handles recycle through a free list; each recycle
// bumps the slot's generation so stale uopRefs are detectable. alloc
// resets only the fields whose stale values could be misread (everything
// else is guarded by counts or written before first read), which is far
// cheaper than zeroing the ~400-byte AoS uop struct per fetch.
type uopArena struct {
	d         []functional.DynInst
	streamIdx []int64 // fused-stream position (STDs not counted)

	fetchCycle      []int64
	insertAt        []int64 // earliest queue-insert cycle
	insertedCycle   []int64
	branchResolveAt []int64 // mispredict resolve cycle, snapshotted at commit
	memFillAt       []int64 // load fill cycle, memoized at first grant
	commitAt        []int64 // commit-ready cycle, memoized once final (0 = unknown)

	dataReg  []isa.Reg // fused store-data register (NoReg otherwise)
	dataProd []prodRef

	entry []*sched.Entry
	opIdx []int32

	claimedBy []uopRef // MOP tail: the claiming head (nilRef otherwise)
	flags     []uint16
	meta      []uint32

	expectOps   []uint8
	attachedOps []uint8
	tailPC      []int32 // for the last-arriving filter's pointer deletion

	// Fixed-stride segments: handle h owns members[h*memberStride:...],
	// etc. Valid prefixes are nMembers/nHeadProds/nTailProds long; slots
	// beyond the count are stale and must not be read.
	nMembers   []uint8
	members    []uint32
	nHeadProds []uint8
	headProds  []prodRef
	nTailProds []uint8
	tailProds  []prodRef

	gen  []uint32
	free []uint32

	// Lifetime accounting for the leak check: every handle allocated
	// during a run must be freed (or still ring-resident) at end-of-run.
	allocs, frees int64
}

// newUopArena sizes the arena for cap concurrent uops. The caller picks
// cap to cover the worst-case live set (fetch ring + ROB + fetch buffer
// + a stalled branch) so the steady-state loop never grows.
func newUopArena(capHint int) *uopArena {
	a := &uopArena{}
	a.grow(capHint)
	return a
}

// grow appends n fresh slots and pushes their handles on the free list.
// Growing mid-run allocates (and would trip the zero-allocs gate), so
// initial sizing matters; grow exists as a correctness backstop.
func (a *uopArena) grow(n int) {
	old := len(a.gen)
	a.d = append(a.d, make([]functional.DynInst, n)...)
	a.streamIdx = append(a.streamIdx, make([]int64, n)...)
	a.fetchCycle = append(a.fetchCycle, make([]int64, n)...)
	a.insertAt = append(a.insertAt, make([]int64, n)...)
	a.insertedCycle = append(a.insertedCycle, make([]int64, n)...)
	a.branchResolveAt = append(a.branchResolveAt, make([]int64, n)...)
	a.memFillAt = append(a.memFillAt, make([]int64, n)...)
	a.commitAt = append(a.commitAt, make([]int64, n)...)
	a.dataReg = append(a.dataReg, make([]isa.Reg, n)...)
	a.dataProd = append(a.dataProd, make([]prodRef, n)...)
	a.entry = append(a.entry, make([]*sched.Entry, n)...)
	a.opIdx = append(a.opIdx, make([]int32, n)...)
	a.claimedBy = append(a.claimedBy, make([]uopRef, n)...)
	a.flags = append(a.flags, make([]uint16, n)...)
	a.meta = append(a.meta, make([]uint32, n)...)
	a.expectOps = append(a.expectOps, make([]uint8, n)...)
	a.attachedOps = append(a.attachedOps, make([]uint8, n)...)
	a.tailPC = append(a.tailPC, make([]int32, n)...)
	a.nMembers = append(a.nMembers, make([]uint8, n)...)
	a.members = append(a.members, make([]uint32, n*memberStride)...)
	a.nHeadProds = append(a.nHeadProds, make([]uint8, n)...)
	a.headProds = append(a.headProds, make([]prodRef, n*headProdStride)...)
	a.nTailProds = append(a.nTailProds, make([]uint8, n)...)
	a.tailProds = append(a.tailProds, make([]prodRef, n*tailProdStride)...)
	a.gen = append(a.gen, make([]uint32, n)...)
	if cap(a.free) < len(a.gen) {
		nf := make([]uint32, len(a.free), len(a.gen))
		copy(nf, a.free)
		a.free = nf
	}
	// Push in reverse so cold-start allocation walks slots 0, 1, 2, ...
	for i := old + n - 1; i >= old; i-- {
		a.claimedBy[i] = nilRef
		a.free = append(a.free, uint32(i))
	}
}

// alloc pops a free handle and resets the fields a fresh uop must see as
// zero. The caller fills d/streamIdx/dataReg/meta and the cycle stamps.
func (a *uopArena) alloc() uint32 {
	if len(a.free) == 0 {
		a.grow(len(a.gen))
	}
	h := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.allocs++
	a.commitAt[h] = 0
	a.dataProd[h] = prodRef{}
	a.entry[h] = nil
	a.opIdx[h] = 0
	a.claimedBy[h] = nilRef
	a.flags[h] = 0
	a.expectOps[h] = 0
	a.attachedOps[h] = 0
	a.nMembers[h] = 0
	a.nHeadProds[h] = 0
	a.nTailProds[h] = 0
	return h
}

// release returns h to the free list and bumps its generation, making
// every outstanding uopRef to it stale.
func (a *uopArena) release(h uint32) {
	a.gen[h]++
	a.entry[h] = nil
	a.frees++
	a.free = append(a.free, h)
}

// valid reports whether r still names the allocation it was created for.
func (a *uopArena) valid(r uopRef) bool {
	return r.idx != nilHandle && a.gen[r.idx] == r.gen
}

// ref builds the current-generation reference to a live handle.
func (a *uopArena) ref(h uint32) uopRef { return uopRef{idx: h, gen: a.gen[h]} }

// packUser encodes a handle for sched.Entry.UserIdx. Zero means unset,
// so the index is biased by one; the generation rides along as an extra
// staleness guard.
func packUser(h, gen uint32) uint64 { return uint64(h+1)<<32 | uint64(gen) }

// unpackUser decodes packUser's encoding (v must be non-zero).
func unpackUser(v uint64) (h, gen uint32) { return uint32(v>>32) - 1, uint32(v) }
