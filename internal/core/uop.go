// Package core implements the 13-stage, 4-wide out-of-order pipeline of
// the paper (Figure 2): fetch (with IL1 and branch prediction), decode,
// rename (with MOP formation and dependence translation for macro-op
// scheduling), queue insertion (pending-bit policy), scheduling
// (internal/sched), dispatch/payload-RAM sequencing, execution with
// functional-unit and memory-port contention, speculative scheduling with
// selective replay, and in-order ROB commit.
//
// The core is execution-driven on the correct path: the functional model
// supplies the committed instruction stream (branch outcomes, addresses);
// the timing model decides when everything happens. Branch mispredictions
// stall fetch until the branch resolves plus the minimum recovery time;
// wrong-path instructions are not injected (their cache pollution is the
// one second-order effect this model omits — see DESIGN.md).
//
// Two data layouts implement the same cycle-exact machine. The default
// (config.LayoutSoA, soacore.go) keeps in-flight instructions as uint32
// handles into a structure-of-arrays arena (arena.go); the reference
// (config.LayoutEntry, entrycore.go) links the heap-pooled *uop structs
// below by pointer. Core (pipeline.go) is a thin wrapper holding
// whichever engine the config selects plus the layout-independent run
// loop.
package core

import (
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/sched"
)

// uop is one in-flight instruction (a fused STA+STD store pair is one uop,
// as the paper's split-store machine commits one store).
type uop struct {
	d         functional.DynInst
	streamIdx int64 // fused-stream position (STDs not counted)

	// dataReg is the fused store-data register (NoReg otherwise); its
	// producer gates commit but is not a scheduling dependence.
	dataReg  isa.Reg
	dataProd prodRef

	// Fetch-time branch prediction outcome.
	mispredicted bool

	fetchCycle    int64
	insertAt      int64 // earliest queue-insert cycle (front-end latency)
	insertedCycle int64
	inserted      bool

	// Scheduling attachment: the issue queue entry holding this uop and
	// which of its (up to two) ops it is.
	entry *sched.Entry
	opIdx int

	// MOP formation state.
	claimedBy *uop // this uop is a designated MOP tail/chain member of claimedBy
	mopHead   bool
	mopTail   bool
	mopDep    bool // true: dependent MOP; false (when grouped): independent
	// expectOps/attachedOps track chain formation on the head: the head
	// plus expectOps-1 claimed members; members lists them in op order.
	expectOps   int
	attachedOps int
	members     []*uop
	headProds   []prodRef
	tailProds   []prodRef
	tailPC      int // for the last-arriving filter's pointer deletion

	// Embedded backing arrays for the three per-uop slices above, so the
	// steady-state rename path never allocates: members holds at most the
	// MOP size; the head carries at most 2 own sources and 2 sources per
	// attached member. The uop pool zeroes the whole struct on reuse.
	membersArr   [sched.MaxMOPOps]*uop
	headProdsArr [2]prodRef
	tailProdsArr [2 * (sched.MaxMOPOps - 1)]prodRef

	// branchResolveAt snapshots a mispredicted branch's resolve cycle at
	// commit, so the fetch stage can compute the resume cycle without
	// consulting the (released, possibly recycled) scheduler entry.
	branchResolveAt int64

	// Load memory-access memoization: the cache is probed once, on the
	// first grant; a replayed load's data still arrives when the original
	// miss fill completes.
	memProbed bool
	memFillAt int64

	committed bool
}

// prodRef names a producing entry/op pair recorded at rename time.
type prodRef struct {
	entry *sched.Entry
	opIdx int
}

func (u *uop) op() isa.Op { return u.d.Inst.Op }

func (u *uop) isLoad() bool  { return u.op().IsLoad() }
func (u *uop) isStore() bool { return u.op() == isa.STA }
func (u *uop) isBranch() bool {
	return u.op().IsControl()
}

// grouped reports whether the uop ended up inside a MOP.
func (u *uop) grouped() bool { return u.entry != nil && u.entry.IsMOP() }

// schedOpInfo builds the scheduler's view of this uop.
func (u *uop) schedOpInfo(loadAssumed int) sched.OpInfo {
	op := u.op()
	lat := op.Latency()
	if op.IsLoad() {
		lat += loadAssumed // agen + assumed DL1 hit
	}
	return sched.OpInfo{
		Seq:     u.d.Seq,
		FU:      op.FUClass(),
		Latency: lat,
		IsLoad:  op.IsLoad(),
	}
}
