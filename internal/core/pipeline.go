package core

import (
	"context"
	"runtime/debug"

	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/program"
	"macroop/internal/sched"
	"macroop/internal/simerr"
)

// engine is the layout-specific half of the pipeline: one clock step plus
// the accessors the shared run loop and the test/diagnostic surface need.
type engine interface {
	step()
	drained() bool
	progress() (cycles, committed int64)
	runErr() error
	scheduler() sched.Engine
	errCtx() simerr.Context
	fillCtx(*simerr.Context)
	stateDump() string
	finishStats() *Result
	setTracer(Tracer)
	setHooks(Hooks)
	setStageClock(*stageClock)
}

// Core simulates one machine configuration over one instruction stream.
type Core struct {
	cfg   config.Machine
	eng   engine
	clock *stageClock // non-nil iff stage accounting is on
}

// New builds a core over prog with an embedded functional reference
// stream.
func New(cfg config.Machine, prog *program.Program) (*Core, error) {
	return NewFromSource(cfg, prog.Name, functional.NewExecutor(prog))
}

// NewFromSource builds a core that fetches from an arbitrary dynamic
// instruction source (a functional simulator, a trace reader, ...).
func NewFromSource(cfg config.Machine, name string, src functional.Source) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var (
		eng engine
		err error
	)
	if cfg.Layout == config.LayoutEntry {
		eng, err = newEntryCore(cfg, name, src)
	} else {
		eng, err = newSoaCore(cfg, name, src)
	}
	if err != nil {
		return nil, err
	}
	return &Core{cfg: cfg, eng: eng}, nil
}

// SetTracer attaches t to receive per-uop stage events. Pass nil to
// detach. Tracing is off the hot path: with no tracer the per-event cost
// is a nil check.
func (c *Core) SetTracer(t Tracer) { c.eng.setTracer(t) }

// SetHooks attaches h to receive issue/commit/MOP-formation/cycle
// events. Pass nil to detach.
func (c *Core) SetHooks(h Hooks) { c.eng.setHooks(h) }

// SetStageAccounting toggles per-stage wall-time accounting. When on,
// every cycle brackets each pipeline stage with monotonic clock reads —
// roughly doubling the cost of a cycle — so throughput measurement and
// stage attribution should run in separate legs. Toggling resets the
// accumulated breakdown.
func (c *Core) SetStageAccounting(on bool) {
	if on {
		c.clock = &stageClock{}
	} else {
		c.clock = nil
	}
	c.eng.setStageClock(c.clock)
}

// StageBreakdown returns the per-stage time split accumulated since
// stage accounting was last enabled. Zero value if accounting is off.
func (c *Core) StageBreakdown() StageBreakdown {
	if c.clock == nil {
		return StageBreakdown{}
	}
	return c.clock.breakdown()
}

// Scheduler exposes the core's scheduler for diagnostic and
// fault-injection use (internal/fault). Mutating it mid-run changes
// simulated timing.
func (c *Core) Scheduler() sched.Engine { return c.eng.scheduler() }

// Progress reports the machine's cumulative cycle and committed-
// instruction counters. Unlike Result, which is refreshed only when a
// Run returns, these are live — callers interleaving StepCycles with
// timed Run legs use them to delimit measurement windows.
func (c *Core) Progress() (cycles, committed int64) { return c.eng.progress() }

// step advances one clock cycle (test hook).
func (c *Core) step() { c.eng.step() }

// Run simulates until maxInsts instructions commit (or the program ends)
// and returns the results.
func (c *Core) Run(maxInsts int64) (*Result, error) {
	return c.RunContext(context.Background(), maxInsts)
}

// ctxPollCycles is how often RunContext polls the context for
// cancellation. 1024 cycles keeps the check off the per-cycle hot path
// while bounding the response latency to well under a millisecond of
// wall time.
const ctxPollCycles = 1024

// RunContext simulates until maxInsts instructions commit, the program
// ends, ctx is cancelled, or the machine stops making forward progress.
//
// Every abnormal outcome is a typed error from internal/simerr:
//
//   - ErrCancelled when ctx is cancelled (checked every ctxPollCycles);
//   - ErrDeadlock when no instruction commits within the watchdog window
//     (config.Machine.WatchdogCycles), with a pipeline state dump;
//   - ErrLivelock when a scheduler entry exceeds the replay-storm limit;
//   - ErrCheckFailed when an attached verification hook rejects a commit;
//   - ErrInternal for residual panics, recovered here so a simulator bug
//     in one run cannot take down the whole process.
func (c *Core) RunContext(ctx context.Context, maxInsts int64) (res *Result, err error) {
	e := c.eng
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(*simerr.InternalError); ok {
				// Typed panic from a subsystem: keep its context if set,
				// fill ours in where missing.
				if ie.Ctx == (simerr.Context{}) {
					ie.Ctx = e.errCtx()
				} else {
					e.fillCtx(&ie.Ctx)
				}
				res, err = nil, ie
				return
			}
			res, err = nil, simerr.Internal(e.errCtx(), r, string(debug.Stack()))
		}
	}()
	// An already-expired context stops the run before cycle 0 — without
	// this, a cancelled sweep cell would still burn a full poll window
	// (ctxPollCycles cycles) before noticing.
	if cerr := ctx.Err(); cerr != nil {
		return nil, simerr.Cancelled(e.errCtx(), cerr)
	}
	maxCycles := maxInsts * 1000
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	watchdog := c.cfg.EffectiveWatchdog()
	sch := e.scheduler()
	cycle, committed := e.progress()
	lastCommitCycle := cycle
	lastCommitted := committed
	nextPoll := cycle + ctxPollCycles
	for committed < maxInsts {
		if e.drained() {
			break // program ended and pipeline drained
		}
		e.step()
		cycle, committed = e.progress()
		if rerr := e.runErr(); rerr != nil {
			return nil, rerr
		}
		if serr := sch.Err(); serr != nil {
			if se, ok := serr.(*simerr.Error); ok {
				e.fillCtx(&se.Ctx)
			}
			return nil, serr
		}
		if committed > lastCommitted {
			lastCommitted = committed
			lastCommitCycle = cycle
		} else if watchdog > 0 && cycle-lastCommitCycle > watchdog {
			return nil, simerr.Deadlock(e.errCtx(), e.stateDump(),
				"no commit for %d cycles (watchdog window %d)",
				cycle-lastCommitCycle, watchdog)
		}
		if cycle >= nextPoll {
			nextPoll = cycle + ctxPollCycles
			if cerr := ctx.Err(); cerr != nil {
				return nil, simerr.Cancelled(e.errCtx(), cerr)
			}
		}
		if cycle > maxCycles {
			return nil, simerr.Deadlock(e.errCtx(), e.stateDump(),
				"exceeded cycle budget %d for %d insts", maxCycles, maxInsts)
		}
	}
	return e.finishStats(), nil
}

// StepCycles advances the machine by exactly n cycles (or until the
// program ends and the pipeline drains), regardless of how many
// instructions commit. It exists for steady-state measurement — a caller
// that has already warmed the core can bracket a StepCycles window with
// runtime.ReadMemStats to attribute allocations to the cycle loop alone,
// excluding one-time costs like lazy memory-page growth during the rest
// of the run. Returns the number of cycles actually stepped.
func (c *Core) StepCycles(n int64) (int64, error) {
	e := c.eng
	sch := e.scheduler()
	var stepped int64
	for ; stepped < n; stepped++ {
		if e.drained() {
			break
		}
		e.step()
		if rerr := e.runErr(); rerr != nil {
			return stepped, rerr
		}
		if serr := sch.Err(); serr != nil {
			return stepped, serr
		}
	}
	return stepped, nil
}
