package core

import (
	"math/rand"
	"testing"

	"macroop/internal/config"
	"macroop/internal/workload"
)

// TestArenaGenerationGuard exercises the usurper hazard the generation
// field exists for: a handle is released and immediately recycled (the
// free list is LIFO, so the next alloc reuses the same slot), and a ref
// taken in the previous life must not validate against the new tenant.
func TestArenaGenerationGuard(t *testing.T) {
	a := newUopArena(4)
	if a.valid(nilRef) {
		t.Fatal("nilRef reports valid")
	}
	h := a.alloc()
	r := a.ref(h)
	if !a.valid(r) {
		t.Fatal("fresh ref reports stale")
	}
	a.release(h)
	if a.valid(r) {
		t.Fatal("ref to a released handle still validates")
	}
	h2 := a.alloc()
	if h2 != h {
		t.Fatalf("expected LIFO recycle of handle %d, got %d", h, h2)
	}
	if a.valid(r) {
		t.Fatal("stale ref validates against the usurper generation")
	}
	if !a.valid(a.ref(h2)) {
		t.Fatal("usurper's own ref reports stale")
	}

	// The packed Entry.UserIdx encoding must round-trip handle and
	// generation (zero is reserved for "unset", hence the bias).
	if v := packUser(h2, a.gen[h2]); v == 0 {
		t.Fatal("packUser returned the reserved zero value")
	} else if hh, g := unpackUser(v); hh != h2 || g != a.gen[h2] {
		t.Fatalf("packUser round-trip: got (%d,%d), want (%d,%d)", hh, g, h2, a.gen[h2])
	}
}

// TestArenaRandomLifecycle drives a random alloc/release schedule and
// checks the arena's bookkeeping invariants at every step: live refs
// validate, refs from any earlier life do not, and the outstanding count
// (allocs-frees) always equals capacity minus free-list length.
func TestArenaRandomLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := newUopArena(8)
	var live []uint32
	refs := make(map[uint32]uopRef)
	var stale []uopRef
	for step := 0; step < 20_000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			h := a.alloc()
			if _, ok := refs[h]; ok {
				t.Fatalf("step %d: alloc returned live handle %d", step, h)
			}
			live = append(live, h)
			refs[h] = a.ref(h)
		} else {
			i := rng.Intn(len(live))
			h := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			stale = append(stale, refs[h])
			delete(refs, h)
			a.release(h)
		}
		if len(stale) > 64 {
			stale = stale[len(stale)-64:]
		}
		if out := a.allocs - a.frees; out != int64(len(live)) {
			t.Fatalf("step %d: allocs-frees=%d, live=%d", step, out, len(live))
		}
		if got := len(a.gen) - len(a.free); got != len(live) {
			t.Fatalf("step %d: cap-free=%d, live=%d", step, got, len(live))
		}
	}
	for h, r := range refs {
		if !a.valid(r) {
			t.Fatalf("live handle %d reports stale", h)
		}
	}
	for _, r := range stale {
		if a.valid(r) {
			t.Fatalf("released-life ref {%d,%d} still validates", r.idx, r.gen)
		}
	}
}

// TestArenaNoHandleLeak runs the soa core over real workloads and checks
// that the arena never grows past its warmed-up capacity: a uop whose
// handle is not released at retirement (or ring eviction) would push
// steady-state occupancy up until the arena is forced to grow, so a
// stable capacity across long legs is exactly the no-leak property. The
// outstanding-count consistency invariant rides along.
func TestArenaNoHandleLeak(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		m    config.Machine
	}{
		{"base", config.Default()},
		{"mop", config.Default().WithMOP(config.DefaultMOP())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.m, prog)
			if err != nil {
				t.Fatal(err)
			}
			sc, ok := c.eng.(*soaCore)
			if !ok {
				t.Fatal("default layout is not the soa core")
			}
			if _, err := c.Run(60_000); err != nil {
				t.Fatal(err)
			}
			capWarm := len(sc.ar.gen)
			for leg := int64(1); leg <= 3; leg++ {
				if _, err := c.Run(60_000 + leg*60_000); err != nil {
					t.Fatal(err)
				}
				if got := len(sc.ar.gen); got != capWarm {
					t.Fatalf("leg %d: arena grew %d -> %d handles: leaked uops force growth", leg, capWarm, got)
				}
				out := sc.ar.allocs - sc.ar.frees
				if out != int64(len(sc.ar.gen)-len(sc.ar.free)) {
					t.Fatalf("leg %d: allocs-frees=%d but cap-free=%d", leg, out, len(sc.ar.gen)-len(sc.ar.free))
				}
			}
		})
	}
}
