package core

import (
	"fmt"
	"testing"

	"macroop/internal/config"
	"macroop/internal/workload"
)

// BenchmarkCycleLoop measures the steady-state cost of one pipeline cycle
// (commit+issue+insert+fetch) per scheduler model, with allocations
// reported so a regression in the zero-alloc property shows up as
// allocs/op > 0.
func BenchmarkCycleLoop(b *testing.B) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		b.Fatal(err)
	}
	for name, m := range map[string]config.Machine{
		"base": config.Default(),
		"mop":  config.Default().WithMOP(config.DefaultMOP()),
	} {
		b.Run(name, func(b *testing.B) {
			c, err := New(m, prog)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Run(30_000); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.step()
			}
			b.StopTimer()
			if c.srcErr != nil || c.hookErr != nil {
				b.Fatalf("stepping failed: src=%v hook=%v", c.srcErr, c.hookErr)
			}
			committed := c.cnt.committed
			if c.cycle > 0 {
				b.ReportMetric(float64(committed)/float64(c.cycle), "insts/cycle")
			}
			_ = fmt.Sprintf("%d", committed) // keep the counter live
		})
	}
}
