package core

import (
	"fmt"
	"testing"

	"macroop/internal/config"
	"macroop/internal/workload"
)

// BenchmarkCycleLoop measures the steady-state cost of one pipeline cycle
// (commit+issue+insert+fetch) per scheduler model, with allocations
// reported so a regression in the zero-alloc property shows up as
// allocs/op > 0.
func BenchmarkCycleLoop(b *testing.B) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		b.Fatal(err)
	}
	for name, m := range map[string]config.Machine{
		"base":       config.Default(),
		"mop":        config.Default().WithMOP(config.DefaultMOP()),
		"base-entry": config.Default().WithLayout(config.LayoutEntry),
		"mop-entry":  config.Default().WithMOP(config.DefaultMOP()).WithLayout(config.LayoutEntry),
	} {
		b.Run(name, func(b *testing.B) {
			c, err := New(m, prog)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Run(30_000); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.step()
			}
			b.StopTimer()
			if err := c.eng.runErr(); err != nil {
				b.Fatalf("stepping failed: %v", err)
			}
			cycles, committed := c.Progress()
			if cycles > 0 {
				b.ReportMetric(float64(committed)/float64(cycles), "insts/cycle")
			}
			_ = fmt.Sprintf("%d", committed) // keep the counter live
		})
	}
}
