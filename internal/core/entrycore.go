package core

import (
	"errors"
	"fmt"
	"strings"

	"macroop/internal/branch"
	"macroop/internal/cache"
	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/mop"
	"macroop/internal/program"
	"macroop/internal/sched"
	"macroop/internal/simerr"
)

const ringSize = 256 // recently fetched uops kept for MOP formation checks

// entryCore is the pointer-linked reference implementation of the core
// pipeline (config.LayoutEntry): in-flight instructions are heap-pooled
// *uop structs linked by pointers. It is retained as the differential
// reference for the structure-of-arrays layout (soacore.go), exactly as
// the entry scheduler kernel is retained for the bitset kernel.
type entryCore struct {
	cfg  config.Machine
	name string
	src  functional.Source
	pred *branch.Predictor
	mem  *cache.Hierarchy
	sch  sched.Engine
	det  *mop.Detector
	ptab *mop.PointerTable

	cycle int64

	// Fetch state.
	nextStreamIdx int64
	fetchDone     bool  // functional stream exhausted
	stallUntil    int64 // IL1-miss stall
	stallBranch   *uop  // mispredicted branch blocking fetch
	pendingDyn    functional.DynInst
	havePending   bool

	ring [ringSize]*uop // fetched uops by streamIdx%ringSize

	// Front-end delay line: fetched uops awaiting queue insertion. A
	// fixed-capacity ring (FetchBufEntries slots) — the old slice-of-uops
	// re-allocated on every append/advance cycle.
	feq     []*uop
	feqHead int
	feqLen  int

	// Rename state: architectural register -> producing entry/op.
	rename [isa.NumRegs]prodRef

	// MOP formation state.
	pendingHeads []*uop

	// ROB.
	rob      []*uop
	robHead  int
	robCount int

	// uopFree pools retired uops for reuse (recycled when their ring slot
	// is overwritten, i.e. well after any late reader is gone).
	uopFree []*uop

	// Per-call scratch for the rename path, reused every cycle. srcSpecs
	// returns slices into specsBuf/prodsBuf (valid until its next call);
	// groupBuf/dynsBuf/claimBuf back the insert-group, detector-feed, and
	// chain-claim loops.
	specsBuf [2]sched.SrcSpec
	prodsBuf [2]prodRef
	groupBuf []*uop
	dynsBuf  []*functional.DynInst
	claimBuf []*uop

	tracer  Tracer
	hooks   Hooks
	clock   *stageClock // per-stage wall-time accounting (nil = off)
	hookErr error
	srcErr  error // instruction-source fault (malformed stream, I/O error)

	// cnt batches the per-event statistics counters written on the hot
	// path; finishStats folds them into res. Counters are cumulative, so
	// repeated Run calls on one core stay consistent.
	cnt struct {
		committed, fetched, opsIssued                                         int64
		il1Misses, dl1Misses, branchMispredicts                               int64
		notCandidate, candNotGrouped, valueGenGrouped, nonValueGenGrouped     int64
		indepGrouped, mopsFormed, depMOPsFormed, indepMOPsFormed, mopsDemoted int64
		formCtrlMiss, formCycleAborts, formMissedScope, filterDeletes         int64
	}

	res Result
}

// newEntryCore builds the pointer-linked reference core. The caller
// (core.NewFromSource) has already validated cfg.
func newEntryCore(cfg config.Machine, name string, src functional.Source) (*entryCore, error) {
	var fu [isa.NumClasses]int
	for c := range fu {
		fu[c] = cfg.FUCount(c)
	}
	pred, err := branch.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	c := &entryCore{
		cfg:      cfg,
		name:     name,
		src:      src,
		pred:     pred,
		mem:      mem,
		rob:      make([]*uop, cfg.ROBEntries),
		feq:      make([]*uop, cfg.FetchBufEntries),
		groupBuf: make([]*uop, 0, cfg.Width),
		dynsBuf:  make([]*functional.DynInst, 0, cfg.Width),
		claimBuf: make([]*uop, 0, sched.MaxMOPOps),
	}
	c.sch = sched.NewEngine(cfg.Kernel, sched.Config{
		Model:         cfg.Sched,
		Width:         cfg.Width,
		IQEntries:     cfg.IQEntries,
		FU:            fu,
		ReplayPenalty: cfg.ReplayPenalty,
		ReplayLimit:   cfg.ReplayStormLimit,
		// Every non-final entry keeps at least one uncommitted op in the
		// in-order ROB, so the ROB bounds the live entry window.
		Window: cfg.ROBEntries,
	})
	if cfg.Sched == config.SchedMOP {
		c.ptab = mop.NewPointerTable()
		c.det = mop.NewDetector(cfg.MOP, c.ptab)
	}
	c.res.Benchmark = name
	return c, nil
}

// engine interface: the layout-independent run loop (pipeline.go) drives
// the layout-specific machinery through these accessors.

func (c *entryCore) drained() bool {
	return c.fetchDone && c.robCount == 0 && c.feqLen == 0
}

func (c *entryCore) progress() (cycles, committed int64) {
	return c.cycle, c.cnt.committed
}

// runErr reports a pending instruction-source or hook error.
func (c *entryCore) runErr() error {
	if c.srcErr != nil {
		return c.srcErr
	}
	return c.hookErr
}

func (c *entryCore) scheduler() sched.Engine     { return c.sch }
func (c *entryCore) setTracer(t Tracer)          { c.tracer = t }
func (c *entryCore) setHooks(h Hooks)            { c.hooks = h }
func (c *entryCore) setStageClock(k *stageClock) { c.clock = k }

// errCtx captures the machine's position for error reports.
func (c *entryCore) errCtx() simerr.Context {
	return simerr.Context{
		Benchmark: c.name,
		Sched:     c.cfg.Sched.String(),
		Cycle:     c.cycle,
		Committed: c.cnt.committed,
	}
}

// fillCtx completes an error context produced by a subsystem that only
// knows the cycle (e.g. the scheduler) with the run's identity.
func (c *entryCore) fillCtx(ctx *simerr.Context) {
	if ctx.Benchmark == "" {
		ctx.Benchmark = c.name
	}
	if ctx.Sched == "" {
		ctx.Sched = c.cfg.Sched.String()
	}
	if ctx.Cycle == 0 {
		ctx.Cycle = c.cycle
	}
	if ctx.Committed == 0 {
		ctx.Committed = c.cnt.committed
	}
}

// stateDump renders the pipeline state for deadlock diagnostics: ROB and
// issue-queue occupancy, the age of the stuck ROB head, replay counts,
// and the oldest unissued scheduler entries.
func (c *entryCore) stateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: ROB %d/%d, IQ %d occupied, fetch buffer %d, fetchDone=%v\n",
		c.cycle, c.robCount, c.cfg.ROBEntries, c.sch.Occupied(), c.feqLen, c.fetchDone)
	st := c.sch.Stats()
	fmt.Fprintf(&b, "sched: %d grants, %d replays\n", st.Grants, st.Replays)
	if c.robCount > 0 {
		u := c.rob[c.robHead]
		fmt.Fprintf(&b, "ROB head: seq %d pc %d op %v, fetched cycle %d (age %d)",
			u.streamIdx, u.d.PC, u.d.Inst.Op, u.fetchCycle, c.cycle-u.fetchCycle)
		if u.entry != nil {
			fmt.Fprintf(&b, ", entry %d final=%v", u.entry.ID(), u.entry.Final())
		}
		b.WriteByte('\n')
	}
	b.WriteString(c.sch.DumpActive(8))
	return b.String()
}

// step advances one clock cycle.
func (c *entryCore) step() {
	if c.clock != nil {
		c.stepTimed()
		return
	}
	c.commit()
	c.issue()
	c.insert()
	c.fetch()
	if c.hooks != nil {
		// Fast path: with no hooks attached (the common case for sweeps)
		// the only cost per cycle is this one predictable branch.
		c.hookCycle()
	}
	c.cycle++
}

// stepTimed is step with per-stage wall-time accounting. It is a
// separate copy so the untimed loop pays only one nil check per cycle.
func (c *entryCore) stepTimed() {
	k := c.clock
	t0 := k.now()
	c.commit()
	t1 := k.now()
	grants := c.sch.Tick(c.cycle)
	t2 := k.now()
	c.applyGrants(grants)
	t3 := k.now()
	c.insert()
	t4 := k.now()
	c.fetch()
	t5 := k.now()
	if c.hooks != nil {
		c.hookCycle()
	}
	c.cycle++
	k.add(t0, t1, t2, t3, t4, t5)
}

// ringPut installs a freshly fetched uop in the recent-fetch ring,
// recycling the uop whose slot it overwrites. By then the old uop is
// ringSize fetches in the past — far beyond the in-flight window (ROB +
// fetch buffer), so nothing can still reference it except a fetch stall
// on a mispredicted branch (excluded explicitly).
func (c *entryCore) ringPut(u *uop) {
	idx := u.streamIdx % ringSize
	if old := c.ring[idx]; old != nil && old.committed && old != c.stallBranch {
		c.uopFree = append(c.uopFree, old)
	}
	c.ring[idx] = u
}

// allocUop pops the uop pool (or allocates on cold start) and returns a
// zeroed uop.
func (c *entryCore) allocUop() *uop {
	if n := len(c.uopFree); n > 0 {
		u := c.uopFree[n-1]
		c.uopFree[n-1] = nil
		c.uopFree = c.uopFree[:n-1]
		*u = uop{}
		return u
	}
	return new(uop)
}

// feqPush appends to the front-end delay line ring.
func (c *entryCore) feqPush(u *uop) {
	c.feq[(c.feqHead+c.feqLen)%len(c.feq)] = u
	c.feqLen++
}

// feqFront returns the oldest queued uop (feqLen must be > 0).
func (c *entryCore) feqFront() *uop { return c.feq[c.feqHead] }

// feqPop removes the oldest queued uop.
func (c *entryCore) feqPop() {
	c.feq[c.feqHead] = nil
	c.feqHead = (c.feqHead + 1) % len(c.feq)
	c.feqLen--
}

// ---------------------------------------------------------------------
// Issue (scheduling) stage: drive the scheduler and apply per-grant
// consequences (cache probes for loads, branch resolution bookkeeping).

func (c *entryCore) issue() {
	c.applyGrants(c.sch.Tick(c.cycle))
}

// applyGrants applies the per-grant consequences of one scheduler tick.
func (c *entryCore) applyGrants(grants []sched.Grant) {
	for _, g := range grants {
		// UserData holds the entry's head uop (a bare pointer, so storing
		// it in the interface never allocates); members[0] is the head
		// itself, later slots the attached chain members.
		h, ok := g.Entry.UserData.(*uop)
		if !ok || g.OpIdx >= len(h.members) {
			continue
		}
		uo := h.members[g.OpIdx]
		if uo == nil {
			continue
		}
		c.cnt.opsIssued++
		c.trace(uo, StageIssue, g.Cycle)
		c.hookIssue(uo, g.Cycle)
		if uo.isLoad() {
			// Probe the data hierarchy on the first grant only (issue
			// order is deterministic); if the load replays, its data
			// still arrives when the original access completes.
			agen := int64(uo.op().Latency())
			if !uo.memProbed {
				if !c.sch.OperandsValid(g.Entry) {
					// Invalidly issued (operands not really ready): the
					// address is not computable, so no cache access
					// happens; this grant will be rescinded and the load
					// reissued.
					continue
				}
				lat, hit := c.mem.Data(uo.d.MemAddr)
				if !hit {
					c.cnt.dl1Misses++
				}
				uo.memProbed = true
				uo.memFillAt = g.Cycle + agen + int64(lat)
			}
			actual := maxI64(g.Cycle+agen+int64(c.loadAssumed()), uo.memFillAt)
			discover := g.Cycle + int64(c.cfg.ExecOffset) + 1
			c.sch.SetLoadResult(g.Entry, g.OpIdx, actual, discover)
		}
	}
}

// ---------------------------------------------------------------------
// Fetch stage.

func (c *entryCore) fetch() {
	if c.fetchDone {
		return
	}
	// Mispredicted branch: fetch resumes after it finally resolves. A
	// committed branch's entry is already released, so retire snapshots
	// the resolve cycle into branchResolveAt for us.
	if b := c.stallBranch; b != nil {
		var resolve int64
		switch {
		case b.committed:
			resolve = b.branchResolveAt
		case b.entry != nil && b.entry.Final():
			// (chain members execute opIdx cycles after the MOP issues)
			resolve = b.entry.Grant() + int64(c.cfg.ExecOffset) + int64(b.opIdx)
		default:
			return
		}
		resume := maxI64(resolve+1, b.fetchCycle+int64(c.cfg.MinBranchPenalty))
		if c.cycle < resume {
			return
		}
		c.stallBranch = nil
	}
	if c.cycle < c.stallUntil {
		return
	}

	var curLine uint64
	haveLine := false
	for n := 0; n < c.cfg.Width && c.feqLen < c.cfg.FetchBufEntries; n++ {
		d := c.peekDyn()
		if d == nil {
			c.fetchDone = true
			return
		}
		// Instruction cache: one line access per group; crossing into a
		// new line probes again, and a miss cuts the group.
		line := program.ByteAddr(d.PC) / uint64(c.cfg.Mem.IL1.LineBytes)
		if !haveLine || line != curLine {
			lat, hit := c.mem.Fetch(program.ByteAddr(d.PC))
			if !hit {
				c.cnt.il1Misses++
				c.stallUntil = c.cycle + int64(lat-c.cfg.Mem.IL1.Latency)
				if n == 0 {
					return // group starts next cycle, after the fill
				}
				break
			}
			curLine, haveLine = line, true
		}

		u := c.takeDyn()
		u.fetchCycle = c.cycle
		c.trace(u, StageFetch, c.cycle)
		u.insertAt = c.cycle + int64(c.cfg.FrontLatency)
		if c.cfg.Sched == config.SchedMOP {
			u.insertAt += int64(c.cfg.MOP.ExtraFormationStages)
		}
		c.ringPut(u)
		c.feqPush(u)
		c.cnt.fetched++

		if u.isBranch() {
			if c.predictBranch(u) {
				break // taken (or mispredicted): group ends
			}
		}
	}
}

// predictBranch runs fetch-time prediction for u, updates predictor state,
// and reports whether the fetch group must end (redirect or mispredict).
func (c *entryCore) predictBranch(u *uop) bool {
	op := u.op()
	d := &u.d
	switch {
	case op.IsCondBranch():
		pred := c.pred.PredictDirection(d.PC)
		c.pred.UpdateDirection(d.PC, d.Taken)
		if pred != d.Taken {
			u.mispredicted = true
			c.cnt.branchMispredicts++
			c.stallBranch = u
			return true
		}
		if d.Taken {
			c.pred.UpdateTarget(d.PC, d.NextPC)
		}
		return d.Taken
	case op.IsDirectJump():
		// Direct targets are available from predecode; JAL pushes the RAS.
		if op == isa.JAL {
			c.pred.PushRAS(d.PC + 1)
		}
		c.pred.UpdateTarget(d.PC, d.NextPC)
		return true
	case op.IsIndirect():
		target, ok := c.pred.PopRAS()
		c.pred.RecordTargetOutcome(true, target, d.NextPC)
		if !ok || target != d.NextPC {
			u.mispredicted = true
			c.cnt.branchMispredicts++
			c.stallBranch = u
		}
		return true
	}
	return false
}

// peekDyn returns the next fused dynamic instruction without consuming
// it. The returned pointer aliases the core's single pending-instruction
// buffer: it is valid until the next peekDyn after a take.
func (c *entryCore) peekDyn() *functional.DynInst {
	if c.havePending {
		return &c.pendingDyn
	}
	if err := c.src.Step(&c.pendingDyn); err != nil {
		if errors.Is(err, functional.ErrHalted) {
			return nil
		}
		if c.srcErr == nil {
			e := simerr.New(simerr.KindInternal, c.errCtx(),
				"instruction source fault at stream index %d: %v", c.nextStreamIdx, err)
			e.Err = err
			c.srcErr = e
		}
		return nil
	}
	c.havePending = true
	return &c.pendingDyn
}

// takeDyn consumes the next fused dynamic instruction as a uop, merging a
// following STD into its STA.
func (c *entryCore) takeDyn() *uop {
	d := c.peekDyn()
	c.havePending = false
	u := c.allocUop()
	u.d = *d
	u.streamIdx = c.nextStreamIdx
	u.dataReg = isa.NoReg
	c.nextStreamIdx++
	if u.d.Inst.Op == isa.STA {
		// peekDyn reuses the pending buffer, so consult u.d (already
		// copied) rather than d from here on.
		std := c.peekDyn()
		if std == nil || std.Inst.Op != isa.STD {
			if c.srcErr == nil {
				c.srcErr = simerr.New(simerr.KindInternal, c.errCtx(),
					"STA at pc %d (stream index %d) not followed by STD", u.d.PC, u.streamIdx)
			}
			return u
		}
		u.dataReg = std.Inst.Src1
		c.havePending = false
	}
	return u
}

// ---------------------------------------------------------------------
// Queue-insert stage (rename + MOP formation + issue queue insertion).

func (c *entryCore) insert() {
	inserted := 0
	group := c.groupBuf[:0]
	for c.feqLen > 0 && inserted < c.cfg.Width {
		u := c.feqFront()
		if u.insertAt > c.cycle {
			break
		}
		if c.robCount >= c.cfg.ROBEntries {
			break
		}
		// A claimed tail shares its head's entry; everything else needs a
		// fresh one.
		needsEntry := u.claimedBy == nil
		if needsEntry && !c.sch.HasSpace(1) {
			break
		}
		c.feqPop()
		c.renameAndInsert(u)
		c.robPush(u)
		group = append(group, u)
		inserted++
	}
	if len(group) > 0 {
		c.afterInsertGroup(group)
	}
}

// robPush appends to the ROB ring.
func (c *entryCore) robPush(u *uop) {
	c.rob[(c.robHead+c.robCount)%len(c.rob)] = u
	c.robCount++
	u.inserted = true
}

// srcSpecs builds the scheduler source list for u's register operands,
// excluding x (the intra-MOP producer) when attaching a tail.
// The returned slices are scratch (specsBuf/prodsBuf) valid until the
// next srcSpecs call; callers copy what they keep.
func (c *entryCore) srcSpecs(u *uop, exclude *sched.Entry) ([]sched.SrcSpec, []prodRef) {
	specs := c.specsBuf[:0]
	prods := c.prodsBuf[:0]
	for _, r := range [2]isa.Reg{u.d.Inst.Src1, u.d.Inst.Src2} {
		if r == isa.NoReg || r == isa.R0 {
			continue
		}
		p := c.rename[r]
		if p.entry == exclude && exclude != nil {
			continue // satisfied inside the MOP; no tag broadcast needed
		}
		specs = append(specs, sched.SrcSpec{Prod: p.entry, ProdOp: p.opIdx})
		prods = append(prods, p)
	}
	return specs, prods
}

func (c *entryCore) loadAssumed() int { return c.mem.LoadAssumedLatency() }

func (c *entryCore) finishStats() *Result {
	c.res.Cycles = c.cycle
	if c.cycle > 0 {
		c.res.IPC = float64(c.cnt.committed) / float64(c.cycle)
	}
	// Fold the hot-path counter block into the result (plain assignment:
	// cnt is cumulative, so repeated Run calls on one core stay correct).
	c.res.Committed = c.cnt.committed
	c.res.Fetched = c.cnt.fetched
	c.res.OpsIssued = c.cnt.opsIssued
	c.res.IL1Misses = c.cnt.il1Misses
	c.res.DL1Misses = c.cnt.dl1Misses
	c.res.BranchMispredicts = c.cnt.branchMispredicts
	c.res.NotCandidate = c.cnt.notCandidate
	c.res.CandNotGrouped = c.cnt.candNotGrouped
	c.res.ValueGenGrouped = c.cnt.valueGenGrouped
	c.res.NonValueGenGrouped = c.cnt.nonValueGenGrouped
	c.res.IndepGrouped = c.cnt.indepGrouped
	c.res.MOPsFormed = c.cnt.mopsFormed
	c.res.DepMOPsFormed = c.cnt.depMOPsFormed
	c.res.IndepMOPsFormed = c.cnt.indepMOPsFormed
	c.res.MOPsDemoted = c.cnt.mopsDemoted
	c.res.FormCtrlMiss = c.cnt.formCtrlMiss
	c.res.FormCycleAborts = c.cnt.formCycleAborts
	c.res.FormMissedScope = c.cnt.formMissedScope
	c.res.FilterDeletes = c.cnt.filterDeletes
	c.res.SchedStats = c.sch.Stats()
	if c.det != nil {
		c.res.DetectStats = c.det.Stats()
	}
	condSeen, condHit, _, _, rasSeen, rasHit := c.pred.Stats()
	c.res.CondBranches, c.res.CondCorrect = condSeen, condHit
	c.res.Returns, c.res.ReturnsCorrect = rasSeen, rasHit
	c.res.IL1MissRate = c.mem.IL1().MissRate()
	c.res.DL1MissRate = c.mem.DL1().MissRate()
	c.res.L2MissRate = c.mem.L2().MissRate()
	if c.ptab != nil {
		c.res.PointerInstalls = c.ptab.Installs()
		c.res.PointerDeletes = c.ptab.Deletes()
	}
	return &c.res
}

// ---------------------------------------------------------------------
// Commit stage.

func (c *entryCore) commit() {
	for n := 0; n < c.cfg.Width && c.robCount > 0; n++ {
		u := c.rob[c.robHead]
		if !c.committable(u) {
			return
		}
		c.retire(u)
		c.rob[c.robHead] = nil
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
	}
}

// committable reports whether the ROB head has fully completed.
func (c *entryCore) committable(u *uop) bool {
	if u.entry == nil || !u.entry.Final() {
		return false
	}
	if u.isStore() && u.dataProd.entry != nil && !u.dataProd.entry.Final() {
		return false
	}
	return c.cycle >= c.commitReadyAt(u)
}

// commitReadyAt returns the earliest cycle u may commit: its own result's
// availability, and for a fused store also the store-data producer's. The
// entry (and data producer, if any) must already be final.
func (c *entryCore) commitReadyAt(u *uop) int64 {
	done := u.entry.ActualReady(u.opIdx) + int64(c.cfg.ExecOffset)
	if u.isStore() && u.dataProd.entry != nil {
		p := u.dataProd
		done = maxI64(done, p.entry.ActualReady(p.opIdx)+int64(c.cfg.ExecOffset))
	}
	return done
}

// retire commits one instruction: stores write the data cache, MOP
// statistics and the last-arriving filter run here.
func (c *entryCore) retire(u *uop) {
	u.committed = true
	c.trace(u, StageCommit, c.cycle)
	c.hookCommit(u)
	c.cnt.committed++
	if u.isStore() {
		// Stores write memory at commit (Section 2.1); the tag fill keeps
		// the data cache warm for later loads.
		c.mem.DL1().Touch(u.d.MemAddr)
	}
	c.accountMOP(u)
	if u.mopHead && c.cfg.Sched == config.SchedMOP && c.cfg.MOP.LastArrivingFilter {
		c.lastArrivingFilter(u)
	}
	if u.mispredicted {
		// Snapshot the resolve cycle before the entry reference is
		// dropped: the fetch stage may still be stalled on this branch
		// after its entry has been released and recycled.
		u.branchResolveAt = u.entry.Grant() + int64(c.cfg.ExecOffset) + int64(u.opIdx)
	}
	// Drop every entry reference this uop retained at rename time, in
	// reverse order of acquisition; the scheduler recycles an entry onto
	// its free list when the last reference goes.
	for _, p := range u.headProds {
		if p.entry != nil {
			c.sch.Release(p.entry)
		}
	}
	for _, p := range u.tailProds {
		if p.entry != nil {
			c.sch.Release(p.entry)
		}
	}
	if u.dataProd.entry != nil {
		c.sch.Release(u.dataProd.entry)
	}
	u.headProds = nil
	u.tailProds = nil
	u.dataProd = prodRef{}
	u.claimedBy = nil
	if u.opIdx == u.entry.NumOps()-1 {
		// Last member of the entry to commit: no more grants can arrive,
		// so the payload back-pointer can go too.
		u.entry.UserData = nil
	}
	c.sch.Release(u.entry) // the member op's own reference
	u.entry = nil
	// u.members stays: its backing array is embedded in the uop and is
	// zeroed wholesale when the pool reuses it.
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
