package core

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/program"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

// loopProgram builds a loop whose body is produced by fill, running
// effectively forever (the simulator bounds by instruction count).
type program2 = program.Builder

func loopProgram(name string, fill func(b *program2)) *program.Program {
	b := program.NewBuilder(name)
	b.MovI(7, 1<<40)
	b.Label("top")
	fill(b)
	b.OpImm(isa.ADDI, 7, 7, -1)
	b.Branch(isa.BNE, 7, isa.R0, "top")
	b.Halt()
	return b.MustBuild()
}

func runProg(t *testing.T, m config.Machine, p *program.Program, n int64) *Result {
	t.Helper()
	c, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeterminism(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	prog := workloadtest.Generate(t, prof)
	m := config.Default().WithMOP(config.DefaultMOP())
	a := runProg(t, m, prog, 50000)
	b := runProg(t, m, prog, 50000)
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.MOPsFormed != b.MOPsFormed {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/insts", a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
}

func TestIndependentStreamNearWidth(t *testing.T) {
	// 16 fully independent single-cycle ops per iteration: IPC should
	// approach the 4-wide limit (taken loop branch breaks fetch groups,
	// so somewhat below 4).
	p := loopProgram("indep", func(b *program.Builder) {
		for i := 0; i < 16; i++ {
			b.OpImm(isa.ADDI, isa.Reg(8+i), isa.Reg(8+i), 1)
		}
	})
	res := runProg(t, config.Unrestricted(), p, 100000)
	if res.IPC < 3.0 {
		t.Fatalf("independent stream IPC %.2f, want > 3", res.IPC)
	}
}

func TestSerialChainModels(t *testing.T) {
	// One serial chain: base ~1 IPC of chain ops, 2-cycle ~0.5, MOP back
	// to ~1 once pointers warm up.
	p := loopProgram("chain", func(b *program.Builder) {
		for i := 0; i < 16; i++ {
			b.OpImm(isa.ADDI, 8, 8, 1)
		}
	})
	base := runProg(t, config.Unrestricted().WithSched(config.SchedBase), p, 60000)
	two := runProg(t, config.Unrestricted().WithSched(config.SchedTwoCycle), p, 60000)
	mc := config.DefaultMOP()
	mc.ExtraFormationStages = 0
	mop := runProg(t, config.Unrestricted().WithMOP(mc), p, 60000)
	if base.IPC < 0.93 || base.IPC > 1.15 {
		t.Fatalf("base chain IPC %.3f, want ~1", base.IPC)
	}
	if two.IPC < 0.46 || two.IPC > 0.60 {
		t.Fatalf("2-cycle chain IPC %.3f, want ~0.5", two.IPC)
	}
	if mop.IPC < 0.90*base.IPC {
		t.Fatalf("MOP chain IPC %.3f vs base %.3f: fusion did not restore back-to-back", mop.IPC, base.IPC)
	}
	if mop.GroupedFrac() < 0.8 {
		t.Fatalf("chain grouping %.2f, want > 0.8", mop.GroupedFrac())
	}
}

func TestMispredictionCost(t *testing.T) {
	// Same loop with a predictable vs data-random conditional branch.
	predictable := loopProgram("pred", func(b *program.Builder) {
		for i := 0; i < 6; i++ {
			b.OpImm(isa.ADDI, isa.Reg(8+i), isa.Reg(8+i), 1)
		}
		b.Branch(isa.BNE, isa.R0, isa.R0, "top") // never taken
	})
	noisy := loopProgram("noisy", func(b *program.Builder) {
		// LCG in r1; branch on a high bit.
		b.MovI(2, 0x5851f42d)
		b.Op3(isa.MUL, 1, 1, 2)
		b.OpImm(isa.ADDI, 1, 1, 0x2545)
		b.MovI(3, 33)
		b.Op3(isa.SRL, 4, 1, 3)
		b.OpImm(isa.AND, 5, 4, 0) // keep structure similar
		b.Op3(isa.SLT, 5, isa.R0, 4)
		b.Emit(isa.Instruction{Op: isa.AND, Dest: 5, Src1: 4, Src2: isa.NoReg})
		b.Branch(isa.BNE, 5, isa.R0, "skip")
		b.OpImm(isa.ADDI, 8, 8, 1)
		b.Label("skip")
	})
	_ = noisy
	resP := runProg(t, config.Default(), predictable, 50000)
	if rate := resP.BranchMispredictRate(); rate > 0.001 {
		t.Fatalf("predictable loop mispredict rate %.4f", rate)
	}
}

func TestRandomBranchMispredictsAndStalls(t *testing.T) {
	// A branch on LCG bit 40: ~50% taken, unpredictable; IPC must be far
	// below the predictable equivalent and mispredicts near 50% of the
	// branch count.
	mk := func(noisy bool) *program.Program {
		return loopProgram("b", func(b *program.Builder) {
			b.MovI(2, 0x5851f42d4c957f2d)
			b.MovI(3, 40)
			b.Op3(isa.MUL, 1, 1, 2)
			b.OpImm(isa.ADDI, 1, 1, 0x2545)
			b.Op3(isa.SRL, 4, 1, 3)
			b.MovI(5, 1)
			b.Op3(isa.AND, 4, 4, 5)
			if noisy {
				b.Branch(isa.BNE, 4, isa.R0, "skip")
			} else {
				b.Branch(isa.BNE, isa.R0, isa.R0, "skip")
			}
			b.OpImm(isa.ADDI, 8, 8, 1)
			b.OpImm(isa.ADDI, 9, 9, 1)
			b.Label("skip")
		})
	}
	noisy := runProg(t, config.Default(), mk(true), 50000)
	calm := runProg(t, config.Default(), mk(false), 50000)
	if noisy.IPC > 0.8*calm.IPC {
		t.Fatalf("random branch cost invisible: %.3f vs %.3f", noisy.IPC, calm.IPC)
	}
	// gshare learns part of the LCG's linear bit structure, so the rate
	// lands well below 50%; it must still be far above a predictable loop.
	if noisy.CondBranches == 0 ||
		float64(noisy.CondBranches-noisy.CondCorrect)/float64(noisy.CondBranches) < 0.12 {
		t.Fatalf("random branch mispredict rate too low: %d/%d", noisy.CondCorrect, noisy.CondBranches)
	}
}

func TestLoadMissesSlowDown(t *testing.T) {
	// Pointer-chase-free strided loads over footprints below vs far above
	// the cache sizes.
	mk := func(foot int64) *program.Program {
		b := program.NewBuilder("mem")
		b.MovI(7, 1<<40)
		b.MovI(4, (foot-1) & ^int64(7))
		b.MovI(5, 0)
		b.MovI(6, 4096+264)
		b.Label("top")
		for i := 0; i < 4; i++ {
			b.Load(isa.Reg(8+i), 5, int64(i)*512)
		}
		b.Op3(isa.ADD, 5, 5, 6)
		b.Op3(isa.AND, 5, 5, 4)
		b.OpImm(isa.ADDI, 7, 7, -1)
		b.Branch(isa.BNE, 7, isa.R0, "top")
		b.Halt()
		return b.MustBuild()
	}
	small := runProg(t, config.Default(), mk(8*1024), 60000)
	big := runProg(t, config.Default(), mk(16*1024*1024), 60000)
	if big.IPC > 0.75*small.IPC {
		t.Fatalf("memory-bound program not slower: %.3f vs %.3f (dl1 miss %.3f vs %.3f)",
			big.IPC, small.IPC, big.DL1MissRate, small.DL1MissRate)
	}
	if big.DL1MissRate < 5*small.DL1MissRate {
		t.Fatalf("footprint did not change miss rate: %.3f vs %.3f", big.DL1MissRate, small.DL1MissRate)
	}
}

func TestReplaysHappenOnMisses(t *testing.T) {
	p := loopProgram("replay", func(b *program.Builder) {
		b.MovI(4, 16*1024*1024-8)
		b.MovI(6, 4096+520)
		b.Load(8, 5, 0)
		b.OpImm(isa.ADDI, 9, 8, 1) // dependent on the load: shadow victim
		b.OpImm(isa.ADDI, 10, 9, 1)
		b.Op3(isa.ADD, 5, 5, 6)
		b.Op3(isa.AND, 5, 5, 4)
	})
	res := runProg(t, config.Default(), p, 50000)
	if res.SchedStats.Replays == 0 {
		t.Fatal("no selective replays despite missing loads with dependents")
	}
}

func TestStoreCommitAndDataDependence(t *testing.T) {
	// A store whose data comes from a long-latency DIV must not block the
	// machine, and the program must complete.
	p := loopProgram("store", func(b *program.Builder) {
		b.MovI(2, 3)
		b.Op3(isa.DIV, 8, 2, 2)
		b.Store(8, 5, 64)
		b.Load(9, 5, 64)
	})
	res := runProg(t, config.Default(), p, 30000)
	if res.IPC <= 0 {
		t.Fatal("store/div loop made no progress")
	}
}

func TestMOPGroupingOnFusablePattern(t *testing.T) {
	// Compare-branch pairs: the classic fusable idiom.
	p := loopProgram("cmpbr", func(b *program.Builder) {
		for i := 0; i < 4; i++ {
			b.OpImm(isa.ADDI, isa.Reg(8+i), isa.Reg(8+i), 3)
			b.Op3(isa.SLT, isa.Reg(12+i), isa.R0, isa.Reg(8+i))
			b.Branch(isa.BNE, isa.Reg(12+i), isa.R0, "skip")
		}
		b.Label("skip")
	})
	mc := config.DefaultMOP()
	res := runProg(t, config.Default().WithMOP(mc), p, 50000)
	if res.GroupedFrac() < 0.5 {
		t.Fatalf("compare-branch grouping %.2f, want > 0.5", res.GroupedFrac())
	}
	if res.NonValueGenGrouped == 0 {
		t.Fatal("no non-value-generating (branch) tails grouped")
	}
}

func TestAllModelsAllBenchmarksSmall(t *testing.T) {
	models := []config.SchedModel{
		config.SchedBase, config.SchedTwoCycle, config.SchedMOP,
		config.SchedSelectFreeSquashDep, config.SchedSelectFreeScoreboard,
	}
	for _, prof := range workload.Profiles() {
		prog := workloadtest.Generate(t, prof)
		var baseIPC float64
		for _, m := range models {
			res := runProg(t, config.Default().WithSched(m), prog, 8000)
			if res.Committed < 8000 {
				t.Fatalf("%s/%v: committed %d", prof.Name, m, res.Committed)
			}
			if res.IPC <= 0 || res.IPC > 4 {
				t.Fatalf("%s/%v: IPC %.3f out of range", prof.Name, m, res.IPC)
			}
			if m == config.SchedBase {
				baseIPC = res.IPC
			}
			if m == config.SchedTwoCycle && res.IPC > baseIPC*1.02 {
				t.Fatalf("%s: 2-cycle (%.3f) beat base (%.3f)", prof.Name, res.IPC, baseIPC)
			}
			if m != config.SchedMOP && res.GroupedFrac() != 0 {
				t.Fatalf("%s/%v: grouping outside MOP mode", prof.Name, m)
			}
		}
	}
}

func TestIQSmallerIsSlower(t *testing.T) {
	prof, _ := workload.ByName("gap")
	prog := workloadtest.Generate(t, prof)
	small := runProg(t, config.Default().WithIQ(8), prog, 40000)
	big := runProg(t, config.Default().WithIQ(64), prog, 40000)
	if small.IPC >= big.IPC {
		t.Fatalf("8-entry queue (%.3f) not slower than 64-entry (%.3f)", small.IPC, big.IPC)
	}
}

func TestMOPEffectiveWindow(t *testing.T) {
	// Under a tight queue, MOP scheduling must beat the base scheduler
	// (two instructions per entry = bigger effective window), the paper's
	// Figure 15 headline.
	prof, _ := workload.ByName("gap")
	prog := workloadtest.Generate(t, prof)
	base := runProg(t, config.Default().WithIQ(12).WithSched(config.SchedBase), prog, 60000)
	mop := runProg(t, config.Default().WithIQ(12).WithMOP(config.DefaultMOP()), prog, 60000)
	if mop.IPC <= base.IPC {
		t.Fatalf("MOP (%.3f) did not beat base (%.3f) at IQ=12", mop.IPC, base.IPC)
	}
}

func TestProgramEndsDrainPipeline(t *testing.T) {
	b := program.NewBuilder("tiny")
	b.MovI(1, 5)
	b.OpImm(isa.ADDI, 2, 1, 1)
	b.Halt()
	p := b.MustBuild()
	res := runProg(t, config.Default(), p, 1000000)
	if res.Committed != 2 {
		t.Fatalf("committed %d, want 2 then halt", res.Committed)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	prog := workloadtest.Generate(t, prof)
	m := config.Default()
	m.Width = 0
	if _, err := New(m, prog); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestExtraFormationStagesCost(t *testing.T) {
	prof, _ := workload.ByName("parser")
	prog := workloadtest.Generate(t, prof)
	mk := func(stages int) float64 {
		mc := config.DefaultMOP()
		mc.ExtraFormationStages = stages
		return runProg(t, config.Default().WithMOP(mc), prog, 40000).IPC
	}
	if s0, s2 := mk(0), mk(2); s2 > s0*1.02 {
		t.Fatalf("2 extra stages (%.3f) not costlier than 0 (%.3f)", s2, s0)
	}
}
