package core

import (
	"fmt"
	"strings"

	"macroop/internal/mop"
	"macroop/internal/sched"
)

// Result reports one simulation run.
type Result struct {
	Benchmark string
	Cycles    int64
	Committed int64 // committed instructions (a fused store counts once)
	IPC       float64

	// ReproFingerprint is empty for a run that completed. Sweep harnesses
	// set it on the zero-valued placeholder result of a permanently
	// failed cell to the failing error's repro fingerprint
	// (simerr.FingerprintOf), so a rendered partial table still names the
	// failure identity of every dead cell.
	ReproFingerprint string `json:",omitempty"`

	Fetched   int64
	OpsIssued int64

	// Branch prediction.
	BranchMispredicts int64
	CondBranches      int64
	CondCorrect       int64
	Returns           int64
	ReturnsCorrect    int64

	// Memory system.
	IL1Misses   int64
	DL1Misses   int64
	IL1MissRate float64
	DL1MissRate float64
	L2MissRate  float64

	// Macro-op formation (Figure 13 categories, counted at commit).
	NotCandidate       int64
	CandNotGrouped     int64
	ValueGenGrouped    int64
	NonValueGenGrouped int64
	IndepGrouped       int64

	MOPsFormed      int64
	DepMOPsFormed   int64
	IndepMOPsFormed int64
	MOPsDemoted     int64
	FormCtrlMiss    int64 // formation rejected: control flow differed from pointer
	FormCycleAborts int64 // chained formation aborted: would create a dependence cycle
	FormMissedScope int64 // formation rejected: tail outside the insertion window
	FilterDeletes   int64 // last-arriving filter pointer deletions
	PointerInstalls int64
	PointerDeletes  int64

	SchedStats  sched.Stats
	DetectStats mop.DetectStats
}

// GroupedInsts returns the number of committed instructions that were
// part of any MOP.
func (r *Result) GroupedInsts() int64 {
	return r.ValueGenGrouped + r.NonValueGenGrouped + r.IndepGrouped
}

// GroupedFrac returns the fraction of committed instructions grouped into
// MOPs (the headline of Figure 13).
func (r *Result) GroupedFrac() float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.GroupedInsts()) / float64(r.Committed)
}

// InsertReduction returns the relative reduction in scheduler insertions
// from MOP grouping (entries vs original instructions; the paper reports
// an average 16.2%).
func (r *Result) InsertReduction() float64 {
	ops := r.SchedStats.OpsInserted
	if ops == 0 {
		return 0
	}
	return 1 - float64(r.SchedStats.EntriesInserted)/float64(ops)
}

// ReplayRate returns speculative-scheduling replays (invalid issues in a
// load's miss shadow) per committed instruction; one of the golden-file
// key stats.
func (r *Result) ReplayRate() float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.SchedStats.Replays) / float64(r.Committed)
}

// BranchMispredictRate returns mispredictions per committed instruction.
func (r *Result) BranchMispredictRate() float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.BranchMispredicts) / float64(r.Committed)
}

// String renders a human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: IPC %.3f (%d insts / %d cycles)\n", r.Benchmark, r.IPC, r.Committed, r.Cycles)
	fmt.Fprintf(&b, "  branches: %d mispredicts (cond acc %.1f%%)\n",
		r.BranchMispredicts, 100*safeDiv(r.CondCorrect, r.CondBranches))
	fmt.Fprintf(&b, "  caches: IL1 %.2f%% DL1 %.2f%% L2 %.2f%% miss\n",
		100*r.IL1MissRate, 100*r.DL1MissRate, 100*r.L2MissRate)
	fmt.Fprintf(&b, "  sched: %d entries / %d ops inserted, %d grants, %d replays\n",
		r.SchedStats.EntriesInserted, r.SchedStats.OpsInserted, r.SchedStats.Grants, r.SchedStats.Replays)
	if r.MOPsFormed > 0 {
		fmt.Fprintf(&b, "  MOPs: %d formed (%d dep, %d indep), %d demoted; %.1f%% insts grouped, insert reduction %.1f%%\n",
			r.MOPsFormed, r.DepMOPsFormed, r.IndepMOPsFormed, r.MOPsDemoted,
			100*r.GroupedFrac(), 100*r.InsertReduction())
	}
	return b.String()
}

func safeDiv(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
