package core

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/program"
)

// TestCallReturnPredictedByRAS checks that call/return pairs predict well
// (the RAS supplies return targets), so a call-heavy loop loses little.
func TestCallReturnPredictedByRAS(t *testing.T) {
	b := program.NewBuilder("calls")
	b.MovI(7, 1<<40)
	b.Label("top")
	b.Call("f1")
	b.Call("f2")
	b.OpImm(isa.ADDI, 7, 7, -1)
	b.Branch(isa.BNE, 7, isa.R0, "top")
	b.Halt()
	b.Label("f1")
	b.OpImm(isa.ADDI, 8, 8, 1)
	b.Ret()
	b.Label("f2")
	b.OpImm(isa.ADDI, 9, 9, 1)
	b.Ret()
	res := runProg(t, config.Default(), b.MustBuild(), 40000)
	if rate := float64(res.ReturnsCorrect) / float64(res.Returns); rate < 0.99 {
		t.Fatalf("RAS accuracy %.3f on nested-free call/return", rate)
	}
	if res.IPC < 1.0 {
		t.Fatalf("call-heavy loop IPC %.3f", res.IPC)
	}
}

// TestRASOverflowMispredicts drives calls deeper than the 16-entry RAS;
// returns beyond the stack depth must mispredict.
func TestRASOverflowMispredicts(t *testing.T) {
	// 20 nested calls: f0 calls f1 calls f2 ... f19; the return chain
	// underflows the 16-entry RAS for the outermost 4 frames.
	b := program.NewBuilder("deep")
	b.MovI(7, 1<<40)
	b.MovI(29, 0x40000) // stack base for saving RA
	b.Label("top")
	b.Call(fnName(0))
	b.OpImm(isa.ADDI, 7, 7, -1)
	b.Branch(isa.BNE, 7, isa.R0, "top")
	b.Halt()
	const depth = 20
	for i := 0; i < depth; i++ {
		b.Label(fnName(i))
		// Save RA to memory, call deeper, restore, return.
		b.Store(isa.RA, 29, int64(i)*8)
		if i+1 < depth {
			b.Call(fnName(i + 1))
		}
		b.Load(isa.RA, 29, int64(i)*8)
		b.Ret()
	}
	res := runProg(t, config.Default(), b.MustBuild(), 40000)
	if res.Returns == 0 {
		t.Fatal("no returns recorded")
	}
	missRate := 1 - float64(res.ReturnsCorrect)/float64(res.Returns)
	if missRate < 0.1 {
		t.Fatalf("return miss rate %.3f; deep nesting should overflow the 16-entry RAS", missRate)
	}
}

func fnName(i int) string {
	return "fn" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}

// TestCodeFootprintIL1 checks that a loop body larger than the 16KB IL1
// runs slower (streaming instruction fetch) than a resident one.
func TestCodeFootprintIL1(t *testing.T) {
	mk := func(bodyInsts int) *program.Program {
		b := program.NewBuilder("code")
		b.MovI(7, 1<<40)
		b.Label("top")
		for i := 0; i < bodyInsts; i++ {
			b.OpImm(isa.ADDI, isa.Reg(8+i%16), isa.Reg(8+i%16), 1)
		}
		b.OpImm(isa.ADDI, 7, 7, -1)
		b.Branch(isa.BNE, 7, isa.R0, "top")
		b.Halt()
		return b.MustBuild()
	}
	small := runProg(t, config.Default(), mk(1000), 60000) // 4KB body: resident
	big := runProg(t, config.Default(), mk(12000), 60000)  // 48KB body: streams
	if big.IL1MissRate < 10*small.IL1MissRate {
		t.Fatalf("IL1 miss rates: big %.4f small %.4f", big.IL1MissRate, small.IL1MissRate)
	}
	if big.IPC > 0.9*small.IPC {
		t.Fatalf("instruction streaming not visible: %.3f vs %.3f", big.IPC, small.IPC)
	}
}

// TestIQOccupancyNeverExceedsLimit runs with a tiny queue and checks the
// scheduler's own occupancy accounting stayed within bounds.
func TestIQOccupancyNeverExceedsLimit(t *testing.T) {
	p := loopProgram("occ", func(b *program2) {
		for i := 0; i < 10; i++ {
			b.OpImm(isa.ADDI, 8, 8, 1)
		}
		b.Load(9, 5, 0)
		b.OpImm(isa.ADDI, 10, 9, 1)
	})
	for _, iq := range []int{4, 8, 16} {
		res := runProg(t, config.Default().WithIQ(iq), p, 20000)
		if res.SchedStats.MaxOccupancy > iq {
			t.Fatalf("IQ=%d: occupancy reached %d", iq, res.SchedStats.MaxOccupancy)
		}
	}
}

// TestMOPOccupancyAdvantage confirms the mechanism behind Figure 15: at
// the same queue size the MOP machine tracks more original instructions.
func TestMOPOccupancyAdvantage(t *testing.T) {
	p := loopProgram("adv", func(b *program2) {
		for i := 0; i < 12; i++ {
			b.OpImm(isa.ADDI, 8, 8, 1) // perfectly fusable chain
		}
	})
	base := runProg(t, config.Default().WithIQ(8).WithSched(config.SchedBase), p, 30000)
	mop := runProg(t, config.Default().WithIQ(8).WithMOP(config.DefaultMOP()), p, 30000)
	if mop.SchedStats.OpsInserted <= mop.SchedStats.EntriesInserted {
		t.Fatal("MOP machine did not pack multiple ops per entry")
	}
	_ = base
}
