// Package workload synthesizes the 12 SPEC CINT2000-like benchmark
// programs used by the reproduction. The paper evaluates Alpha SPEC
// binaries we cannot run; instead, each benchmark is replaced by a
// deterministic synthetic program whose *scheduling-relevant* properties
// are calibrated to the per-benchmark characterization the paper itself
// reports:
//
//   - the fraction of value-generating single-cycle candidates
//     (the "% total insts" line of Figure 6),
//   - the dependence edge distance distribution (Figure 6's buckets —
//     gap shortest, vortex longest),
//   - branch predictability and data-memory behaviour (Table 2's base
//     IPC ordering: eon/gap/gzip high, gcc/parser low, mcf memory-bound).
//
// Programs are real programs: loops, forward branches, calls/returns,
// loads/stores with controlled footprints, executed by the functional
// model; nothing is replayed from canned statistics.
package workload

import "fmt"

// NoiseSource selects what data feeds the unpredictable branches.
type NoiseSource int

// Noise sources.
const (
	// NoiseLCG drives noisy branches from an in-register linear
	// congruential generator (compute-bound noise).
	NoiseLCG NoiseSource = iota
	// NoiseChase drives noisy branches from pointer-chase load results,
	// making mispredictions resolve late behind cache misses (mcf-like).
	NoiseChase
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	Seed uint64

	// Instruction mix. Fractions of the emitted (non-STD) instruction
	// stream; the ALU share is the remainder to 1. A store contributes
	// one unit (its STA; the STD rides along uncounted, as the paper
	// counts stores once).
	FracLoad   float64
	FracStore  float64
	FracBranch float64
	FracMul    float64
	FracDiv    float64
	FracFP     float64

	// ChainFrac is the fraction of ALU operations that extend one of
	// ChainRegs serial accumulator chains (dest == source register, like
	// induction variables and pointer updates). Chains set the dependent
	// critical path that pipelined 2-cycle scheduling stretches; few
	// chains (low ChainRegs) means little ILP to hide the bubbles (the
	// "window filled with chains of dependent instructions" behaviour the
	// paper describes for gap).
	ChainFrac float64
	ChainRegs int

	// DepMean is the mean of the geometric distribution from which ALU
	// source dependence distances are drawn (in dynamic instructions).
	DepMean float64
	// LongDepFrac is the probability an ALU source instead takes a long
	// (uniform in [8, 32]) dependence, fattening the 8+ tail of Figure 6.
	LongDepFrac float64

	// NoisyBranchFrac is the fraction of conditional branches that are
	// data-dependent (hard to predict); the rest follow fixed patterns.
	NoisyBranchFrac float64
	// NoisyBias is the taken-probability of noisy branches.
	NoisyBias float64
	// Noise selects the data source of noisy branches.
	Noise NoiseSource

	// FootprintLog2 is the data working-set size, 1<<FootprintLog2 bytes.
	FootprintLog2 uint
	// StrideBytes advances the rolling data pointer each block.
	StrideBytes int64
	// PointerChase enables an mcf-style dependent-load ring over the
	// footprint; ChaseFrac is the fraction of loads that chase.
	PointerChase bool
	ChaseFrac    float64

	// Program shape: Blocks basic blocks of roughly BlockLen instructions
	// form the loop body (static code footprint = I-cache behaviour).
	Blocks   int
	BlockLen int
	// CallFrac is the fraction of blocks that end by calling one of the
	// shared leaf functions (exercises JAL/JR and the RAS).
	CallFrac float64
}

// Validate sanity-checks the profile.
func (p Profile) Validate() error {
	sum := p.FracLoad + p.FracStore + p.FracBranch + p.FracMul + p.FracDiv + p.FracFP
	if sum >= 1 {
		return fmt.Errorf("workload %s: non-ALU mix %.2f leaves no ALU share", p.Name, sum)
	}
	if p.DepMean < 1 {
		return fmt.Errorf("workload %s: DepMean must be >= 1", p.Name)
	}
	if p.Blocks < 1 || p.BlockLen < 8 {
		return fmt.Errorf("workload %s: degenerate program shape", p.Name)
	}
	if p.FootprintLog2 < 12 || p.FootprintLog2 > 28 {
		return fmt.Errorf("workload %s: footprint out of range", p.Name)
	}
	return nil
}

// Profiles returns the 12 benchmark profiles in the paper's order:
// bzip, crafty, eon, gap, gcc, gzip, mcf, parser, perl, twolf, vortex, vpr.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "bzip", Seed: 0xb21b,
			FracLoad: 0.31, FracStore: 0.12, FracBranch: 0.12, FracMul: 0.04,
			ChainFrac: 0.40, ChainRegs: 1,
			DepMean: 2.0, LongDepFrac: 0.10,
			NoisyBranchFrac: 0.33, NoisyBias: 0.40,
			FootprintLog2: 17, StrideBytes: 264,
			Blocks: 24, BlockLen: 40,
		},
		{
			Name: "crafty", Seed: 0xc4af,
			FracLoad: 0.31, FracStore: 0.12, FracBranch: 0.14, FracMul: 0.05,
			ChainFrac: 0.45, ChainRegs: 1,
			DepMean: 2.4, LongDepFrac: 0.12,
			NoisyBranchFrac: 0.30, NoisyBias: 0.45,
			FootprintLog2: 15, StrideBytes: 136,
			Blocks: 40, BlockLen: 45, CallFrac: 0.3,
		},
		{
			Name: "eon", Seed: 0xe0e0,
			FracLoad: 0.32, FracStore: 0.16, FracBranch: 0.10, FracMul: 0.03, FracFP: 0.22,
			ChainFrac: 0.20, ChainRegs: 3,
			DepMean: 3.2, LongDepFrac: 0.22,
			NoisyBranchFrac: 0.06, NoisyBias: 0.30,
			FootprintLog2: 14, StrideBytes: 72,
			Blocks: 30, BlockLen: 50, CallFrac: 0.4,
		},
		{
			Name: "gap", Seed: 0x9a9,
			FracLoad: 0.29, FracStore: 0.11, FracBranch: 0.13, FracMul: 0.04,
			ChainFrac: 0.42, ChainRegs: 1,
			DepMean: 1.45, LongDepFrac: 0.03,
			NoisyBranchFrac: 0.08, NoisyBias: 0.35,
			FootprintLog2: 16, StrideBytes: 200,
			Blocks: 28, BlockLen: 45,
		},
		{
			Name: "gcc", Seed: 0x9cc,
			FracLoad: 0.35, FracStore: 0.18, FracBranch: 0.17, FracMul: 0.06,
			ChainFrac: 0.55, ChainRegs: 1,
			DepMean: 2.6, LongDepFrac: 0.14,
			NoisyBranchFrac: 0.15, NoisyBias: 0.40,
			FootprintLog2: 17, StrideBytes: 328,
			Blocks: 45, BlockLen: 80, CallFrac: 0.3,
		},
		{
			Name: "gzip", Seed: 0x921f,
			FracLoad: 0.24, FracStore: 0.11, FracBranch: 0.13, FracMul: 0.01,
			ChainFrac: 0.33, ChainRegs: 1,
			DepMean: 1.8, LongDepFrac: 0.06,
			NoisyBranchFrac: 0.18, NoisyBias: 0.45,
			FootprintLog2: 15, StrideBytes: 96,
			Blocks: 20, BlockLen: 40,
		},
		{
			Name: "mcf", Seed: 0x3cf,
			FracLoad: 0.40, FracStore: 0.10, FracBranch: 0.16, FracMul: 0.06,
			ChainFrac: 0.30, ChainRegs: 2,
			DepMean: 1.9, LongDepFrac: 0.08,
			NoisyBranchFrac: 0.25, NoisyBias: 0.45, Noise: NoiseChase,
			FootprintLog2: 24, StrideBytes: 1032,
			PointerChase: true, ChaseFrac: 0.16,
			Blocks: 16, BlockLen: 40,
		},
		{
			Name: "parser", Seed: 0xa45e,
			FracLoad: 0.32, FracStore: 0.13, FracBranch: 0.16, FracMul: 0.04,
			ChainFrac: 0.72, ChainRegs: 1,
			DepMean: 1.8, LongDepFrac: 0.07,
			NoisyBranchFrac: 0.32, NoisyBias: 0.45,
			FootprintLog2: 17, StrideBytes: 520,
			Blocks: 60, BlockLen: 50, CallFrac: 0.2,
		},
		{
			Name: "perl", Seed: 0xbe41,
			FracLoad: 0.33, FracStore: 0.14, FracBranch: 0.15, FracMul: 0.04,
			ChainFrac: 0.45, ChainRegs: 1,
			DepMean: 2.2, LongDepFrac: 0.11,
			NoisyBranchFrac: 0.28, NoisyBias: 0.42,
			FootprintLog2: 16, StrideBytes: 264,
			Blocks: 42, BlockLen: 60, CallFrac: 0.4,
		},
		{
			Name: "twolf", Seed: 0x201f,
			FracLoad: 0.27, FracStore: 0.11, FracBranch: 0.13, FracMul: 0.05,
			ChainFrac: 0.55, ChainRegs: 1,
			DepMean: 1.8, LongDepFrac: 0.07,
			NoisyBranchFrac: 0.26, NoisyBias: 0.45,
			FootprintLog2: 18, StrideBytes: 776,
			Blocks: 30, BlockLen: 45,
		},
		{
			Name: "vortex", Seed: 0x7042,
			FracLoad: 0.36, FracStore: 0.19, FracBranch: 0.12, FracMul: 0.05,
			ChainFrac: 0.10, ChainRegs: 4,
			DepMean: 5.5, LongDepFrac: 0.30,
			NoisyBranchFrac: 0.10, NoisyBias: 0.35,
			FootprintLog2: 17, StrideBytes: 392,
			Blocks: 46, BlockLen: 55, CallFrac: 0.3,
		},
		{
			Name: "vpr", Seed: 0x7b4,
			FracLoad: 0.31, FracStore: 0.14, FracBranch: 0.13, FracMul: 0.05,
			ChainFrac: 0.62, ChainRegs: 1,
			DepMean: 1.9, LongDepFrac: 0.08,
			NoisyBranchFrac: 0.20, NoisyBias: 0.42,
			FootprintLog2: 18, StrideBytes: 648,
			Blocks: 30, BlockLen: 45,
		},
	}
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in the paper's order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
