package workload

import (
	"fmt"
	"runtime/debug"

	"macroop/internal/isa"
	"macroop/internal/program"
	"macroop/internal/rng"
	"macroop/internal/simerr"
)

// Register conventions used by generated programs. Pool registers hold
// flowing data values; the low registers hold long-lived constants and
// state so the generator can control dependence structure precisely.
const (
	regLCG       = isa.Reg(1) // linear congruential generator state
	regShift     = isa.Reg(2) // shift amount extracting noise bits
	regThresh    = isa.Reg(3) // noisy-branch threshold
	regMask      = isa.Reg(4) // footprint mask
	regBase      = isa.Reg(5) // stride data region base
	regChase     = isa.Reg(6) // pointer-chase cursor
	regCount     = isa.Reg(7) // outer loop counter
	poolLo       = isa.Reg(8)
	poolHi       = isa.Reg(18) // pool = r8..r18 inclusive
	chainLo      = isa.Reg(19) // r19..r22: serial accumulator chains
	maxChainRegs = 4
	regChase2    = isa.Reg(23) // extra chase cursors give mcf-like codes
	regChase3    = isa.Reg(24) // memory-level parallelism between chains
	regLCGMul    = isa.Reg(25)
	regRoll      = isa.Reg(26) // rolling data offset
	regBrTmp1    = isa.Reg(27)
	regBrTmp2    = isa.Reg(28)
	regStride    = isa.Reg(29)
	strideBase   = uint64(1) << 26
	chaseBase    = uint64(1) << 27
	chaseGranule = 128  // bytes between chase pointers (one per L2 line)
	localWindow  = 4096 // byte window of spatial locality around regRoll
)

// generator carries the mutable state of one program synthesis.
type generator struct {
	p   Profile
	r   *rng.RNG
	b   *program.Builder
	pos int64 // emitted (non-STD) instruction count

	poolNext isa.Reg
	// recent value-generating writes: parallel slices of emission position
	// and destination register, newest last, bounded ring. recentUsed
	// tracks whether a value has found a consumer yet; unconsumed values
	// are preferred so most produced values are eventually read (low
	// dynamically-dead fraction, as in real compiled code).
	recentPos  []int64
	recentReg  []isa.Reg
	recentUsed []bool
	lastWrite  map[isa.Reg]int64

	labelSeq int
	funcs    []string // labels of generated leaf functions
}

// Generate synthesizes the benchmark program for the profile. The program
// loops effectively forever (2^40 iterations); the simulator bounds runs
// by instruction count.
//
// Any panic during synthesis (e.g. a degenerate profile slipping past
// Validate into the samplers) is recovered and reported as a typed
// *simerr.InternalError rather than crashing the caller.
func Generate(p Profile) (prog *program.Program, err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			prog, err = nil, simerr.Internal(simerr.Context{Benchmark: p.Name}, r, string(debug.Stack()))
		}
	}()
	g := &generator{
		p:         p,
		r:         rng.New(p.Seed),
		b:         program.NewBuilder(p.Name),
		poolNext:  poolLo,
		lastWrite: make(map[isa.Reg]int64),
	}
	g.emitInit()
	g.b.Label("loop_top")
	for blk := 0; blk < p.Blocks; blk++ {
		g.emitBlock(blk)
	}
	g.emit(isa.Instruction{Op: isa.ADDI, Dest: regCount, Src1: regCount, Imm: -1})
	g.branchTo(isa.BNE, regCount, isa.R0, "loop_top")
	g.b.Halt()
	g.emitFunctions()
	if p.PointerChase {
		g.initChaseMemory()
	}
	return g.b.Build()
}

// emit appends one instruction, tracking position and producer state.
func (g *generator) emit(in isa.Instruction) {
	g.b.Emit(in)
	if in.Op != isa.STD {
		g.pos++
	}
	if in.WritesReg() {
		g.notePool(in.Dest)
	}
}

func (g *generator) notePool(dest isa.Reg) {
	g.recentPos = append(g.recentPos, g.pos-1)
	g.recentReg = append(g.recentReg, dest)
	g.recentUsed = append(g.recentUsed, false)
	if len(g.recentPos) > 64 {
		g.recentPos = g.recentPos[1:]
		g.recentReg = g.recentReg[1:]
		g.recentUsed = g.recentUsed[1:]
	}
	g.lastWrite[dest] = g.pos - 1
}

func (g *generator) branchTo(op isa.Op, s1, s2 isa.Reg, label string) {
	g.b.Branch(op, s1, s2, label)
	g.pos++
}

func (g *generator) nextLabel(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, g.labelSeq)
}

// nextPoolReg rotates destinations through the pool, giving values a
// lifetime of ~pool-size value-generating instructions.
func (g *generator) nextPoolReg() isa.Reg {
	r := g.poolNext
	g.poolNext++
	if g.poolNext > poolHi {
		g.poolNext = poolLo
	}
	return r
}

// sourceAt picks a source register whose producing instruction lies
// approximately dist instructions back and is still that register's last
// writer (so the dependence edge really has that distance). Falls back to
// the most recent producer.
func (g *generator) sourceAt(dist int) isa.Reg {
	if len(g.recentPos) == 0 {
		return g.randomPool()
	}
	target := g.pos - int64(dist)
	bestIdx, bestCost := -1, int64(1)<<62
	for i := len(g.recentPos) - 1; i >= 0; i-- {
		reg := g.recentReg[i]
		if g.lastWrite[reg] != g.recentPos[i] {
			continue // overwritten since; edge would bind to the newer writer
		}
		cost := g.recentPos[i] - target
		if cost < 0 {
			cost = -cost
		}
		if g.recentUsed[i] {
			cost += 3 // prefer giving unconsumed values their first reader
		}
		if cost < bestCost {
			bestCost, bestIdx = cost, i
		}
	}
	if bestIdx < 0 {
		return g.randomPool()
	}
	g.recentUsed[bestIdx] = true
	return g.recentReg[bestIdx]
}

func (g *generator) randomPool() isa.Reg {
	return poolLo + isa.Reg(g.r.Intn(int(poolHi-poolLo)+1))
}

// depDistance samples one dependence distance per the profile.
func (g *generator) depDistance() int {
	if g.r.Bool(g.p.LongDepFrac) {
		return 8 + g.r.Intn(25) // uniform [8, 32]
	}
	return g.r.Geometric(g.p.DepMean, 32)
}

func (g *generator) emitInit() {
	b := g.b
	b.MovI(regLCG, int64(g.p.Seed|1))
	b.MovI(regShift, 45)
	footprint := int64(1) << g.p.FootprintLog2
	if g.p.Noise == NoiseChase {
		// Noisy branches compare (chase pointer >> 7) against a threshold
		// inside the chase region.
		entries := footprint / chaseGranule
		b.MovI(regThresh, int64(chaseBase>>7)+int64(g.p.NoisyBias*float64(entries)))
		b.MovI(regShift, 7)
	} else {
		// Threshold over the top 19 bits of the LCG state.
		b.MovI(regThresh, int64(g.p.NoisyBias*float64(1<<19)))
	}
	b.MovI(regMask, (footprint-1)&^7)
	b.MovI(regBase, int64(strideBase))
	b.MovI(regChase, int64(chaseBase))
	if g.p.PointerChase {
		// Secondary cursors start a third and two-thirds of the way
		// around the pointer ring (filled in by initChaseMemory).
		entries := footprint / chaseGranule
		b.MovI(regChase2, int64(chaseBase)+(entries/3)*chaseGranule)
		b.MovI(regChase3, int64(chaseBase)+(2*entries/3)*chaseGranule)
	}
	b.MovI(regCount, 1<<40)
	b.MovI(regLCGMul, 0x5851f42d4c957f2d)
	b.MovI(regRoll, 0)
	b.MovI(regStride, g.p.StrideBytes)
	for r := poolLo; r <= poolHi; r++ {
		b.MovI(r, int64(uint64(r)*0x9e3779b97f4a7c15))
	}
	g.pos = int64(b.Len())
}

// emitBlock generates one basic block of the loop body.
func (g *generator) emitBlock(blk int) {
	// Per-block bookkeeping: advance the LCG and roll the data pointer.
	g.emit(isa.Instruction{Op: isa.MUL, Dest: regLCG, Src1: regLCG, Src2: regLCGMul})
	g.emit(isa.Instruction{Op: isa.ADDI, Dest: regLCG, Src1: regLCG, Imm: 0x2545})
	g.emit(isa.Instruction{Op: isa.ADD, Dest: regRoll, Src1: regRoll, Src2: regStride})
	g.emit(isa.Instruction{Op: isa.AND, Dest: regRoll, Src1: regRoll, Src2: regMask})

	weights := []float64{
		1 - g.p.FracLoad - g.p.FracStore - g.p.FracBranch - g.p.FracMul - g.p.FracDiv - g.p.FracFP,
		g.p.FracLoad, g.p.FracStore, g.p.FracBranch, g.p.FracMul, g.p.FracDiv, g.p.FracFP,
	}
	for n := 0; n < g.p.BlockLen; {
		switch g.r.Pick(weights) {
		case 0:
			g.emitALU()
			n++
		case 1:
			g.emitLoad()
			n++
		case 2:
			g.emitStore()
			n++
		case 3:
			n += g.emitBranch()
		case 4:
			g.emitMulDiv(isa.MUL)
			n++
		case 5:
			g.emitMulDiv(isa.DIV)
			n++
		case 6:
			g.emitFP()
			n++
		}
	}
	if g.r.Bool(g.p.CallFrac) {
		g.emitCall(blk)
	}
}

var aluOps = []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT, isa.ADD, isa.ADD, isa.SUB, isa.XOR}

func (g *generator) emitALU() {
	if g.p.ChainRegs > 0 && g.r.Bool(g.p.ChainFrac) {
		g.emitChainLink()
		return
	}
	op := aluOps[g.r.Intn(len(aluOps))]
	dest := g.nextPoolReg()
	src1 := g.sourceAt(g.depDistance())
	// A slice of ALU operations are immediate-form (single source), which
	// keeps a realistic share of 1-source candidates in the stream.
	if g.r.Bool(0.3) {
		g.emit(isa.Instruction{Op: isa.ADDI, Dest: dest, Src1: src1, Imm: int64(g.r.Intn(256)) - 128})
		return
	}
	src2 := g.sourceAt(g.depDistance())
	// Occasionally mix in LCG entropy so pool values keep evolving.
	if g.r.Bool(0.08) {
		src2 = regLCG
	}
	g.emit(isa.Instruction{Op: op, Dest: dest, Src1: src1, Src2: src2})
}

// emitChainLink extends one of the serial accumulator chains: the
// destination is also a source, so successive links form a dependence
// chain whose throughput is bounded by the scheduling loop latency.
func (g *generator) emitChainLink() {
	n := g.p.ChainRegs
	if n > maxChainRegs {
		n = maxChainRegs
	}
	cr := chainLo + isa.Reg(g.r.Intn(n))
	if g.r.Bool(0.5) {
		g.emit(isa.Instruction{Op: isa.ADDI, Dest: cr, Src1: cr, Imm: int64(g.r.Intn(64)) + 1})
		return
	}
	ops := [...]isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.OR}
	op := ops[g.r.Intn(len(ops))]
	g.emit(isa.Instruction{Op: op, Dest: cr, Src1: cr, Src2: g.sourceAt(g.depDistance())})
}

func (g *generator) emitLoad() {
	if g.p.PointerChase && g.r.Bool(g.p.ChaseFrac) {
		// Rotate between independent chase cursors: the chains are
		// mutually independent, so their misses overlap (mcf exhibits
		// memory-level parallelism across arcs).
		cur := [...]isa.Reg{regChase, regChase2, regChase3}[g.r.Intn(3)]
		g.emit(isa.Instruction{Op: isa.LD, Dest: cur, Src1: cur, Imm: 0})
		return
	}
	dest := g.nextPoolReg()
	delta := int64(g.r.Intn(localWindow/8)) * 8
	g.emit(isa.Instruction{Op: isa.LD, Dest: dest, Src1: regRoll, Imm: int64(strideBase) + delta})
}

func (g *generator) emitStore() {
	delta := int64(g.r.Intn(localWindow/8)) * 8
	data := g.sourceAt(g.depDistance())
	g.emit(isa.Instruction{Op: isa.STA, Dest: isa.NoReg, Src1: regRoll, Imm: int64(strideBase) + delta})
	g.emit(isa.Instruction{Op: isa.STD, Dest: isa.NoReg, Src1: data})
}

// emitBranch emits one branch construct and its skip body, returning the
// number of (non-STD) instructions it contributed.
func (g *generator) emitBranch() int {
	skip := g.nextLabel("skip")
	start := g.pos
	switch {
	case g.r.Bool(g.p.NoisyBranchFrac):
		// Data-dependent branch: extract noise bits, compare against the
		// threshold, branch. The SRL/SLT feeders are themselves prime MOP
		// material (compare-branch pairs).
		noiseSrc := regLCG
		if g.p.Noise == NoiseChase {
			noiseSrc = regChase
		}
		g.emit(isa.Instruction{Op: isa.SRL, Dest: regBrTmp1, Src1: noiseSrc, Src2: regShift})
		g.emit(isa.Instruction{Op: isa.SLT, Dest: regBrTmp2, Src1: regBrTmp1, Src2: regThresh})
		g.branchTo(isa.BNE, regBrTmp2, isa.R0, skip)
	case g.r.Bool(0.3):
		g.b.Jump(skip) // always taken direct jump
		g.pos++
	default:
		g.branchTo(isa.BNE, isa.R0, isa.R0, skip) // never taken
	}
	// The skipped (fall-through) body follows the profile's own
	// ALU/load/store proportions so it does not skew the mix.
	alu := 1 - g.p.FracLoad - g.p.FracStore - g.p.FracBranch - g.p.FracMul - g.p.FracDiv - g.p.FracFP
	for k, n := 0, 1+g.r.Intn(4); k < n; k++ {
		switch g.r.Pick([]float64{alu, g.p.FracLoad, g.p.FracStore}) {
		case 0:
			g.emitALU()
		case 1:
			g.emitLoad()
		case 2:
			g.emitStore()
		}
	}
	g.b.Label(skip)
	return int(g.pos - start)
}

func (g *generator) emitMulDiv(op isa.Op) {
	dest := g.nextPoolReg()
	g.emit(isa.Instruction{Op: op, Dest: dest, Src1: g.sourceAt(g.depDistance()), Src2: g.sourceAt(g.depDistance())})
}

func (g *generator) emitFP() {
	op := isa.FADD
	switch g.r.Intn(5) {
	case 3:
		op = isa.FMUL
	case 4:
		op = isa.FDIV
	}
	dest := g.nextPoolReg()
	g.emit(isa.Instruction{Op: op, Dest: dest, Src1: g.sourceAt(g.depDistance()), Src2: g.sourceAt(g.depDistance())})
}

// emitCall calls one of a small set of shared leaf functions (generated
// lazily); calls exercise JAL/JR and the return address stack.
func (g *generator) emitCall(blk int) {
	const numFuncs = 4
	for len(g.funcs) < numFuncs {
		g.funcs = append(g.funcs, g.nextLabel("fn"))
	}
	g.b.Call(g.funcs[blk%numFuncs])
	g.pos++
}

// emitFunctions generates the leaf function bodies after the main loop.
func (g *generator) emitFunctions() {
	for _, label := range g.funcs {
		g.b.Label(label)
		for k, n := 0, 8+g.r.Intn(8); k < n; k++ {
			g.emitALU()
		}
		g.b.Ret()
		g.pos++
	}
}

// initChaseMemory lays a shuffled pointer ring over the chase region:
// one pointer per chaseGranule bytes, visiting every entry exactly once
// per lap, defeating spatial locality (Sattolo's algorithm).
func (g *generator) initChaseMemory() {
	entries := int((uint64(1) << g.p.FootprintLog2) / chaseGranule)
	perm := make([]int, entries)
	for i := range perm {
		perm[i] = i
	}
	cr := rng.New(g.p.Seed ^ 0xc4a5e)
	for i := entries - 1; i > 0; i-- {
		j := cr.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// The chase register starts at chaseBase (set in emitInit), so rotate
	// the ring to begin there: perm[0] must be entry 0.
	for i, v := range perm {
		if v == 0 {
			perm[0], perm[i] = perm[i], perm[0]
			break
		}
	}
	addr := func(i int) uint64 { return chaseBase + uint64(perm[i])*chaseGranule }
	for i := 0; i < entries; i++ {
		g.b.InitMem(addr(i), addr((i+1)%entries))
	}
}
