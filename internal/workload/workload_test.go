package workload

import (
	"testing"

	"macroop/internal/functional"
	"macroop/internal/mop"
	"macroop/internal/program"
)

func mustGenerate(t *testing.T, p Profile) *program.Program {
	t.Helper()
	prog, err := Generate(p)
	if err != nil {
		t.Fatalf("generate %s: %v", p.Name, err)
	}
	return prog
}

func TestAllProfilesValidateAndBuild(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		prog, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: generated program invalid: %v", p.Name, err)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	p, _ := ByName("gzip")
	a := mustGenerate(t, p)
	b := mustGenerate(t, p)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ across generations")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 12 || names[0] != "bzip" || names[11] != "vpr" {
		t.Fatalf("names: %v", names)
	}
	if _, err := ByName("gcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	p, _ := ByName("gzip")
	p.FracLoad = 0.9
	p.FracStore = 0.3
	if err := p.Validate(); err == nil {
		t.Error("over-full mix accepted")
	}
	p, _ = ByName("gzip")
	p.DepMean = 0.2
	if err := p.Validate(); err == nil {
		t.Error("sub-1 DepMean accepted")
	}
	p, _ = ByName("gzip")
	p.FootprintLog2 = 40
	if err := p.Validate(); err == nil {
		t.Error("giant footprint accepted")
	}
	p, _ = ByName("gzip")
	p.BlockLen = 2
	if err := p.Validate(); err == nil {
		t.Error("degenerate block accepted")
	}
}

// characterizeProfile runs the Figure 6 accumulator over n committed
// instructions of a benchmark.
func characterizeProfile(t *testing.T, name string, n int64) *mop.EdgeDistance {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	e := functional.NewExecutor(mustGenerate(t, p))
	acc := mop.NewEdgeDistance()
	var d functional.DynInst
	for i := int64(0); i < n; i++ {
		if err := e.Step(&d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acc.Push(&d)
	}
	acc.Flush()
	return acc
}

// TestCalibrationCandidateFractions guards the workload calibration: the
// fraction of value-generating candidates must stay close to the paper's
// Figure 6 "%total insts" line for each benchmark.
func TestCalibrationCandidateFractions(t *testing.T) {
	paper := map[string]float64{
		"bzip": 49.2, "crafty": 50.9, "eon": 27.8, "gap": 48.7,
		"gcc": 37.4, "gzip": 56.3, "mcf": 40.2, "parser": 47.5,
		"perl": 42.7, "twolf": 47.7, "vortex": 37.6, "vpr": 44.7,
	}
	const tolerance = 6.0 // percentage points
	for name, want := range paper {
		acc := characterizeProfile(t, name, 150000)
		got := 100 * float64(acc.Heads) / float64(acc.TotalInsts)
		if got < want-tolerance || got > want+tolerance {
			t.Errorf("%s: value-gen candidates %.1f%%, paper %.1f%%", name, got, want)
		}
	}
}

// TestCalibrationEdgeDistanceOrdering guards the qualitative shape the
// paper relies on: gap has the shortest dependence edges, vortex the
// longest.
func TestCalibrationEdgeDistanceOrdering(t *testing.T) {
	within8 := func(name string) float64 {
		acc := characterizeProfile(t, name, 150000)
		withTail := acc.Dist1to3 + acc.Dist4to7 + acc.Dist8plus
		if withTail == 0 {
			t.Fatalf("%s: no tails found", name)
		}
		return float64(acc.Dist1to3+acc.Dist4to7) / float64(withTail)
	}
	gap := within8("gap")
	vortex := within8("vortex")
	gzip := within8("gzip")
	if gap < 0.85 {
		t.Errorf("gap: only %.2f of pairs within 8 insts (paper: 87%%)", gap)
	}
	if vortex > 0.80 {
		t.Errorf("vortex: %.2f of pairs within 8 insts, should be the longest-edge benchmark", vortex)
	}
	if gap <= vortex || gzip <= vortex {
		t.Errorf("ordering violated: gap %.2f gzip %.2f vortex %.2f", gap, gzip, vortex)
	}
}

func TestPointerChaseRingClosed(t *testing.T) {
	p, _ := ByName("mcf")
	prog := mustGenerate(t, p)
	// Follow the pointer ring from chaseBase; it must be a closed cycle
	// over all entries with no zero pointers.
	entries := (1 << p.FootprintLog2) / chaseGranule
	addr := uint64(chaseBase)
	seen := map[uint64]bool{}
	for i := 0; i < entries; i++ {
		if seen[addr] {
			t.Fatalf("ring revisits %x after %d hops (want %d)", addr, i, entries)
		}
		seen[addr] = true
		next, ok := prog.Mem[addr]
		if !ok || next == 0 {
			t.Fatalf("broken ring at %x (hop %d)", addr, i)
		}
		addr = next
	}
	if addr != chaseBase {
		t.Fatalf("ring does not close: ended at %x", addr)
	}
}

func TestChaseCursorsStartOnRing(t *testing.T) {
	p, _ := ByName("mcf")
	prog := mustGenerate(t, p)
	entries := uint64(1<<p.FootprintLog2) / chaseGranule
	for _, start := range []uint64{
		chaseBase,
		chaseBase + (entries/3)*chaseGranule,
		chaseBase + (2*entries/3)*chaseGranule,
	} {
		if _, ok := prog.Mem[start]; !ok {
			t.Errorf("cursor start %x not on the ring", start)
		}
	}
}

func TestStoresAlwaysPaired(t *testing.T) {
	for _, p := range Profiles()[:4] {
		prog := mustGenerate(t, p)
		tr, err := functional.Run(prog, 50000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for i, d := range tr {
			if d.Inst.Op.String() == "sta" {
				if i+1 >= len(tr) || tr[i+1].Inst.Op.String() != "std" {
					t.Fatalf("%s: STA at %d not followed by STD", p.Name, i)
				}
			}
		}
	}
}
