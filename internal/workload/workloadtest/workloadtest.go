// Package workloadtest provides test helpers around workload generation.
// It exists so that tests in other packages can synthesize benchmark
// programs without the library exposing a panicking constructor.
package workloadtest

import (
	"testing"

	"macroop/internal/program"
	"macroop/internal/workload"
)

// Generate synthesizes the benchmark program for the profile, failing the
// test immediately on error.
func Generate(tb testing.TB, p workload.Profile) *program.Program {
	tb.Helper()
	prog, err := workload.Generate(p)
	if err != nil {
		tb.Fatalf("generate %s: %v", p.Name, err)
	}
	return prog
}

// ByName resolves a named profile and synthesizes its program, failing the
// test on either step.
func ByName(tb testing.TB, name string) *program.Program {
	tb.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	return Generate(tb, prof)
}
