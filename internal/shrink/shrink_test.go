package shrink

import (
	"os"
	"path/filepath"
	"testing"

	"macroop/internal/config"
	"macroop/internal/fault"
	"macroop/internal/simerr"
)

// TestMinimizeFaultRepros is the shrink acceptance test: every injected
// fault kind, set up exactly like a default campaign cell (gzip/base,
// 20k-instruction budget, trigger after 500 commits, 3000-cycle
// watchdog), minimizes to a bundle at most a quarter of the original
// budget that still replays — through a JSON round trip — to the same
// typed error and fingerprint.
func TestMinimizeFaultRepros(t *testing.T) {
	for _, fk := range fault.Kinds() {
		fk := fk
		t.Run(fk.String(), func(t *testing.T) {
			t.Parallel()
			const origInsts = 20_000
			b := New("gzip", config.Default().WithSched(config.SchedBase).WithWatchdog(3000), origInsts)
			b.Fault = &FaultSpec{Kind: fk.String(), TriggerCommits: 500}
			min, err := Minimize(b)
			if err != nil {
				t.Fatalf("Minimize: %v", err)
			}
			if min.MaxInsts > origInsts/4 {
				t.Errorf("minimized MaxInsts = %d, want <= %d (25%% of original)", min.MaxInsts, origInsts/4)
			}
			if min.OriginalMaxInsts != origInsts {
				t.Errorf("OriginalMaxInsts = %d, want %d", min.OriginalMaxInsts, origInsts)
			}
			wantKind := simerr.KindCheckFailed
			if fk.MachineSurface() {
				wantKind = simerr.KindDeadlock
			}
			if min.ExpectKind != wantKind.String() {
				t.Errorf("ExpectKind = %s, want %s", min.ExpectKind, wantKind)
			}
			if min.ExpectFingerprint == "" {
				t.Error("minimized bundle has no fingerprint")
			}
			// Machine-surface faults are watchdog-caught: the minimizer
			// should have discovered the checker is not needed.
			if fk.MachineSurface() && min.Check {
				t.Error("machine-surface repro still carries the checker")
			}
			// The bundle must replay to the recorded failure after a JSON
			// round trip — the `mopsim -repro` contract.
			path := filepath.Join(t.TempDir(), "repro.json")
			if err := min.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := loaded.Verify(); err != nil {
				t.Error(err)
			}
			if b.MaxInsts != origInsts || b.ExpectKind != "" {
				t.Errorf("Minimize mutated its input: %+v", b)
			}
		})
	}
}

// TestMinimizeCorruptSource minimizes a functional-source corruption (the
// mopsim -inject-fault path) and checks the invariant bisection leaves
// only the differential group enabled.
func TestMinimizeCorruptSource(t *testing.T) {
	t.Parallel()
	at := int64(500)
	b := New("gzip", config.Default().WithSched(config.SchedBase).WithWatchdog(3000), 20_000)
	b.CorruptAt = &at
	min, err := Minimize(b)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if min.ExpectKind != simerr.KindCheckFailed.String() {
		t.Errorf("ExpectKind = %s, want %s", min.ExpectKind, simerr.KindCheckFailed)
	}
	if min.MaxInsts > 5000 {
		t.Errorf("minimized MaxInsts = %d, want <= 5000", min.MaxInsts)
	}
	if min.CorruptAt == nil || *min.CorruptAt > at {
		t.Errorf("CorruptAt not minimized: %v", min.CorruptAt)
	}
	if len(min.Invariants) != 1 || min.Invariants[0] != "differential" {
		t.Errorf("Invariants = %v, want [differential] (only the differential group sees the corruption)", min.Invariants)
	}
	if err := min.Verify(); err != nil {
		t.Error(err)
	}
}

// TestMinimizeRejectsCleanRun: a configuration that does not fail is an
// error, not an empty bundle.
func TestMinimizeRejectsCleanRun(t *testing.T) {
	t.Parallel()
	if _, err := Minimize(New("gzip", config.Default(), 2000)); err == nil {
		t.Fatal("Minimize accepted a clean configuration")
	}
}

// TestLoadRejectsBadBundles: version and benchmark are validated.
func TestLoadRejectsBadBundles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Load(write("v9.json", `{"Version":9,"Benchmark":"gzip"}`)); err == nil {
		t.Error("Load accepted an unsupported version")
	}
	if _, err := Load(write("nobench.json", `{"Version":1}`)); err == nil {
		t.Error("Load accepted a bundle with no benchmark")
	}
	if _, err := Load(write("garbage.json", `{`)); err == nil {
		t.Error("Load accepted malformed JSON")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load accepted a missing file")
	}
}
