// Package shrink minimizes a failing simulation into a self-contained,
// replayable repro bundle. Given a configuration that fails with a typed
// simerr error (an injected fault, a corrupted functional source, or a
// genuine bug), Minimize bisects the instruction budget, the fault
// trigger point, and the set of active checker invariants down to the
// smallest configuration that still fails with the same error kind, then
// records the exact expected failure (kind + repro fingerprint) so that
// `mopsim -repro bundle.json` can replay it deterministically and verify
// nothing drifted.
package shrink

import (
	"encoding/json"
	"fmt"
	"os"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/fault"
	"macroop/internal/functional"
	"macroop/internal/simerr"
	"macroop/internal/workload"
)

// Version is the bundle format version written by this package.
const Version = 1

// FaultSpec describes a single-shot injected fault (internal/fault).
type FaultSpec struct {
	// Kind is the fault name as printed by fault.Kind.String.
	Kind string
	// TriggerCommits is how many commits pass cleanly before injection.
	TriggerCommits int64
}

// Bundle is a self-contained failure reproduction: everything needed to
// rebuild the simulation (benchmark, full machine config, budget,
// checker setup, fault spec) plus the expected typed failure. Bundles
// serialize to JSON and replay deterministically — the simulator has no
// hidden state, so the same bundle always produces the same error.
type Bundle struct {
	Version   int
	Benchmark string
	// Machine is the complete machine configuration, including the
	// scheduler model and watchdog window.
	Machine config.Machine
	// MaxInsts is the committed-instruction budget for the replay.
	MaxInsts int64
	// Check attaches the lockstep checker (required for event-surface
	// faults; machine-surface faults are caught by the watchdog alone).
	Check bool
	// Invariants names the checker invariant groups left enabled
	// (checker.ParseInvariants); empty means all.
	Invariants []string `json:",omitempty"`
	// Fault, when set, wraps the run with a single-shot fault injector.
	Fault *FaultSpec `json:",omitempty"`
	// CorruptAt, when set, corrupts the core's functional source at the
	// given instruction index (checker.CorruptSource) — the -inject-fault
	// path of mopsim.
	CorruptAt *int64 `json:",omitempty"`

	// ExpectKind and ExpectFingerprint pin the failure this bundle
	// reproduces: the simerr kind name and simerr.FingerprintOf of the
	// error observed when the bundle was minimized.
	ExpectKind        string
	ExpectFingerprint string

	// OriginalMaxInsts records the budget before minimization (0 if the
	// bundle was written by hand).
	OriginalMaxInsts int64 `json:",omitempty"`
	// Notes records what the minimizer did, for humans.
	Notes []string `json:",omitempty"`
}

// New returns an unminimized bundle for the given failing configuration,
// with the checker attached and all invariants active.
func New(bench string, m config.Machine, maxInsts int64) *Bundle {
	return &Bundle{Version: Version, Benchmark: bench, Machine: m, MaxInsts: maxInsts, Check: true}
}

// nopHooks terminates the injector middleware chain when no checker is
// attached.
type nopHooks struct{}

func (nopHooks) OnCycle(int64, int) error         { return nil }
func (nopHooks) OnIssue(*core.IssueEvent) error   { return nil }
func (nopHooks) OnCommit(*core.CommitEvent) error { return nil }
func (nopHooks) OnMOPFormed(int64, []int64) error { return nil }

var _ core.Hooks = nopHooks{}

// Replay rebuilds the simulation the bundle describes and runs it to
// completion, returning whatever the run returns. It does not consult
// ExpectKind/ExpectFingerprint — that is Verify's job.
func (b *Bundle) Replay() (*core.Result, error) {
	prof, err := workload.ByName(b.Benchmark)
	if err != nil {
		return nil, err
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		return nil, err
	}
	var c *core.Core
	if b.CorruptAt != nil {
		src := &checker.CorruptSource{Src: functional.NewExecutor(prog), At: *b.CorruptAt}
		c, err = core.NewFromSource(b.Machine, prog.Name, src)
	} else {
		c, err = core.New(b.Machine, prog)
	}
	if err != nil {
		return nil, err
	}
	var hooks core.Hooks
	if b.Check {
		k := checker.New(prog, b.Machine.IQEntries, b.MaxInsts)
		if len(b.Invariants) > 0 {
			inv, err := checker.ParseInvariants(b.Invariants)
			if err != nil {
				return nil, err
			}
			k.SetInvariants(inv)
		}
		hooks = k
	}
	if b.Fault != nil {
		fk, err := fault.ParseKind(b.Fault.Kind)
		if err != nil {
			return nil, err
		}
		if hooks == nil {
			hooks = nopHooks{}
		}
		hooks = fault.NewInjector(fk, hooks, c.Scheduler(), b.Fault.TriggerCommits,
			b.Machine.Sched == config.SchedMOP)
	}
	if hooks != nil {
		c.SetHooks(hooks)
	}
	return c.Run(b.MaxInsts)
}

// Verify replays the bundle and checks that it fails with exactly the
// recorded kind and fingerprint. nil means the repro still holds.
func (b *Bundle) Verify() error {
	_, err := b.Replay()
	if err == nil {
		return fmt.Errorf("shrink: bundle replayed clean, expected %s", b.ExpectKind)
	}
	k, _ := simerr.KindOf(err)
	if k.String() != b.ExpectKind {
		return fmt.Errorf("shrink: bundle failed with %s, expected %s (%v)", k, b.ExpectKind, err)
	}
	if fp := simerr.FingerprintOf(err); fp != b.ExpectFingerprint {
		return fmt.Errorf("shrink: bundle fingerprint %s, expected %s (%v)", fp, b.ExpectFingerprint, err)
	}
	return nil
}

// Minimize shrinks the bundle to the smallest configuration that still
// fails with the same error kind: it bisects the instruction budget, then
// the fault trigger point (and corruption index), re-bisects the budget,
// and finally strips whatever checker machinery the failure does not
// need. The returned bundle has ExpectKind/ExpectFingerprint pinned from
// a fresh replay of the minimized configuration; the input is not
// modified.
func Minimize(b *Bundle) (*Bundle, error) {
	_, err := b.Replay()
	if err == nil {
		return nil, fmt.Errorf("shrink: configuration does not fail, nothing to minimize")
	}
	kind, _ := simerr.KindOf(err)

	cur := *b
	cur.Version = Version
	cur.OriginalMaxInsts = b.MaxInsts
	cur.Notes = append([]string(nil), b.Notes...)
	if cur.Fault != nil {
		f := *cur.Fault
		cur.Fault = &f
	}
	note := func(format string, args ...any) {
		cur.Notes = append(cur.Notes, fmt.Sprintf(format, args...))
	}
	fails := func(c Bundle) bool {
		_, err := c.Replay()
		if err == nil {
			return false
		}
		k, _ := simerr.KindOf(err)
		return k == kind
	}

	shrinkInsts := func() {
		min := bisect(1, cur.MaxInsts, func(v int64) bool {
			c := cur
			c.MaxInsts = v
			return fails(c)
		})
		if min != cur.MaxInsts {
			note("maxInsts %d -> %d", cur.MaxInsts, min)
			cur.MaxInsts = min
		}
	}

	shrinkInsts()
	if cur.Fault != nil && cur.Fault.TriggerCommits > 0 {
		min := bisect(0, cur.Fault.TriggerCommits, func(v int64) bool {
			c := cur
			f := *cur.Fault
			f.TriggerCommits = v
			c.Fault = &f
			return fails(c)
		})
		if min != cur.Fault.TriggerCommits {
			note("fault trigger %d -> %d", cur.Fault.TriggerCommits, min)
			cur.Fault.TriggerCommits = min
			shrinkInsts() // an earlier fault usually needs a smaller budget
		}
	}
	if cur.CorruptAt != nil && *cur.CorruptAt > 0 {
		min := bisect(0, *cur.CorruptAt, func(v int64) bool {
			c := cur
			c.CorruptAt = &v
			return fails(c)
		})
		if min != *cur.CorruptAt {
			note("corruptAt %d -> %d", *cur.CorruptAt, min)
			cur.CorruptAt = &min
			shrinkInsts()
		}
	}

	// Strip checker machinery the failure does not need: watchdog-caught
	// failures may not need the checker at all; checker-caught failures
	// may need only some invariant groups.
	if cur.Check && kind != simerr.KindCheckFailed {
		c := cur
		c.Check = false
		c.Invariants = nil
		if fails(c) {
			note("checker detached (failure is %s, not check-failed)", kind)
			cur.Check = false
			cur.Invariants = nil
		}
	}
	if cur.Check && kind == simerr.KindCheckFailed {
		inv := checker.InvAll
		if len(cur.Invariants) > 0 {
			if v, err := checker.ParseInvariants(cur.Invariants); err == nil {
				inv = v
			}
		}
		for bit := checker.Invariant(1); bit <= checker.InvAll; bit <<= 1 {
			// Never strip the final group: an empty invariant list means
			// "all" to Replay, so a check-failed repro keeps at least one.
			if inv&bit == 0 || inv&^bit == 0 {
				continue
			}
			c := cur
			c.Invariants = (inv &^ bit).Names()
			if fails(c) {
				inv &^= bit
			}
		}
		if names := inv.Names(); len(names) < len(checker.InvAll.Names()) {
			note("invariants reduced to %v", names)
			cur.Invariants = names
		}
	}

	// Pin the minimized failure identity from a fresh replay.
	_, ferr := cur.Replay()
	if ferr == nil {
		return nil, fmt.Errorf("shrink: minimized bundle replayed clean (non-monotone failure)")
	}
	fkind, _ := simerr.KindOf(ferr)
	if fkind != kind {
		return nil, fmt.Errorf("shrink: minimized bundle fails with %s, original failed with %s", fkind, kind)
	}
	cur.ExpectKind = kind.String()
	cur.ExpectFingerprint = simerr.FingerprintOf(ferr)
	return &cur, nil
}

// bisect returns the smallest v in [lo, hi] with fails(v), assuming
// fails(hi) is already known true. The predicate need not be perfectly
// monotone: the invariant "fails(hi)" is maintained, so the result always
// fails even if some midpoints behave non-monotonically.
func bisect(lo, hi int64, fails func(int64) bool) int64 {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fails(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// Save writes the bundle as indented JSON.
func (b *Bundle) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a bundle written by Save (or by hand).
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("shrink: %s: %w", path, err)
	}
	if b.Version != Version {
		return nil, fmt.Errorf("shrink: %s: unsupported bundle version %d (want %d)", path, b.Version, Version)
	}
	if b.Benchmark == "" {
		return nil, fmt.Errorf("shrink: %s: bundle names no benchmark", path)
	}
	return &b, nil
}
