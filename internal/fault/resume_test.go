package fault

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"macroop/internal/config"
	"macroop/internal/journal"
	"macroop/internal/simerr"
)

// journalLenCtx reports cancellation as soon as the journal holds n
// records, emulating a kill that lands right after the n-th cell commits.
type journalLenCtx struct {
	context.Context
	j *journal.Journal
	n int
}

func (c journalLenCtx) Err() error {
	if c.j.Len() >= c.n {
		return context.Canceled
	}
	return c.Context.Err()
}

func testCampaign(j *journal.Journal) CampaignConfig {
	return CampaignConfig{
		Benchmarks:     []string{"gzip"},
		Scheds:         []config.SchedModel{config.SchedBase, config.SchedTwoCycle},
		Faults:         []Kind{DroppedWakeup, CorruptedDestTag, SkippedCommit},
		MaxInsts:       10_000,
		TriggerCommits: 200,
		WatchdogCycles: 2000,
		Journal:        j,
	}
}

// outcomeFacts flattens an Outcome into its comparable verdict: the
// journaled error is a reconstituted stand-in for the original, so the
// comparison goes through its kind and fingerprint, not error identity.
func outcomeFacts(o Outcome) string {
	fp := ""
	if o.Err != nil {
		fp = simerr.FingerprintOf(o.Err)
	}
	return fmt.Sprintf("%s/%s/%s fired=%v detected=%v by=%s fp=%s",
		o.Bench, o.Sched, o.Fault, o.Fired, o.Detected, o.DetectedBy, fp)
}

// TestCampaignKillAndResume: a campaign interrupted mid-run resumes from
// its journal with the same verdicts as an uninterrupted campaign,
// re-running only the cells the interruption left unfinished.
func TestCampaignKillAndResume(t *testing.T) {
	// Uninterrupted reference, no journal.
	ref, err := RunCampaign(testCampaign(nil))
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	total := len(ref.Outcomes)
	if total != 6 {
		t.Fatalf("reference campaign ran %d cells, want 6", total)
	}

	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel deterministically once two cells are journaled. A wall-clock
	// race (goroutine + sleep) is too slow to reliably interrupt the
	// campaign now that cells finish in well under a millisecond.
	ctx := journalLenCtx{Context: context.Background(), j: j, n: 2}
	if _, err := RunCampaignContext(ctx, testCampaign(j)); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign returned %v, want context.Canceled", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, as a fresh process would after a crash.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	journaled := j2.Len()
	if journaled < 2 || journaled >= total {
		t.Fatalf("interrupt landed badly: %d of %d cells journaled", journaled, total)
	}

	resumed, err := RunCampaignContext(context.Background(), testCampaign(j2))
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if resumed.Executed != total-journaled {
		t.Errorf("resume executed %d cells, want %d (only the unfinished ones)", resumed.Executed, total-journaled)
	}
	if len(resumed.Outcomes) != total {
		t.Fatalf("resumed campaign has %d outcomes, want %d", len(resumed.Outcomes), total)
	}
	for i := range ref.Outcomes {
		if got, want := outcomeFacts(resumed.Outcomes[i]), outcomeFacts(ref.Outcomes[i]); got != want {
			t.Errorf("outcome %d diverged after resume:\n got %s\nwant %s", i, got, want)
		}
	}

	// Fully journaled: a third run simulates nothing and agrees again.
	again, err := RunCampaignContext(context.Background(), testCampaign(j2))
	if err != nil {
		t.Fatalf("fully journaled campaign: %v", err)
	}
	if again.Executed != 0 {
		t.Errorf("fully journaled campaign executed %d cells, want 0", again.Executed)
	}
	for i := range ref.Outcomes {
		if got, want := outcomeFacts(again.Outcomes[i]), outcomeFacts(ref.Outcomes[i]); got != want {
			t.Errorf("journal-only outcome %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestCampaignJournalInvalidatedByConfigChange: changing a campaign
// parameter that affects cell behaviour must not reuse stale outcomes.
func TestCampaignJournalInvalidatedByConfigChange(t *testing.T) {
	j, err := journal.Open(filepath.Join(t.TempDir(), "campaign.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cfg := testCampaign(j)
	cfg.Scheds = []config.SchedModel{config.SchedBase}
	cfg.Faults = []Kind{CorruptedDestTag}
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}

	altered := cfg
	altered.TriggerCommits = 300
	res, err := RunCampaign(altered)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 1 {
		t.Errorf("altered campaign executed %d cells, want 1 (stale record must not be reused)", res.Executed)
	}

	same, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if same.Executed != 0 {
		t.Errorf("unchanged campaign executed %d cells, want 0", same.Executed)
	}
}
