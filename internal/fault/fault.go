// Package fault implements controlled fault injection for the simulator,
// and a campaign runner that proves the verification layers are not
// vacuous: every injected fault must be flagged by the lockstep checker
// (internal/checker) or by the forward-progress watchdog (internal/core),
// as a typed error — never a crash, never a silently wrong result.
//
// Faults come in two surfaces:
//
//   - machine faults perturb real scheduler state through the narrow
//     sched.Fault* API (a dropped wakeup broadcast, a lost selective
//     replay). These starve the machine of forward progress and must be
//     caught by the watchdog as ErrDeadlock;
//   - event faults perturb the hook event stream between the core and
//     the checker (corrupted destination tag, commit-order swap,
//     premature commit, skipped commit) without touching machine state.
//     These must be caught by the checker as ErrCheckFailed.
//
// The injector is core.Hooks middleware: it wraps the real checker, so a
// campaign run exercises exactly the production verification path.
package fault

import (
	"fmt"
	"strings"

	"macroop/internal/core"
	"macroop/internal/functional"
	"macroop/internal/sched"
)

// Kind enumerates the injectable faults.
type Kind int

// The six fault kinds of the campaign.
const (
	// DroppedWakeup deafens one pending source edge in the issue queue:
	// the producer's tag broadcast never reaches the consumer, which
	// therefore never issues. Models a lost wakeup in the CAM/wired-OR
	// array. Expected detector: watchdog (deadlock).
	DroppedWakeup Kind = iota
	// CorruptedDestTag corrupts the issue-queue entry identity on one
	// commit event, as if the destination tag had flipped bits between
	// issue and commit bookkeeping. Expected detector: checker ("commits
	// without ever issuing").
	CorruptedDestTag
	// LostReplay swallows one selective scheduling replay: the invalidly
	// issued op is never re-scheduled, so its entry never finalizes.
	// Expected detector: watchdog (deadlock).
	LostReplay
	// SwappedMOPPair reorders a macro-op pair: under macro-op scheduling
	// the formation report has its member sequence numbers swapped; under
	// the other models (which form no MOPs) two adjacent commit events are
	// delivered in swapped order instead. Expected detector: checker (MOP
	// order violation, or sequence divergence).
	SwappedMOPPair
	// PrematureCommit reports one instruction as committing while its
	// scheduler entry is not final (replay still outstanding). Expected
	// detector: checker.
	PrematureCommit
	// SkippedCommit drops one commit event entirely, as if an instruction
	// retired without the architectural bookkeeping seeing it. Expected
	// detector: checker (sequence divergence on the next commit).
	SkippedCommit

	numKinds
)

// String names the kind (stable; used by the -faults flag and reports).
func (k Kind) String() string {
	switch k {
	case DroppedWakeup:
		return "dropped-wakeup"
	case CorruptedDestTag:
		return "corrupted-dest-tag"
	case LostReplay:
		return "lost-replay"
	case SwappedMOPPair:
		return "swapped-mop-pair"
	case PrematureCommit:
		return "premature-commit"
	case SkippedCommit:
		return "skipped-commit"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Kinds returns all fault kinds in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// ParseKind resolves a fault name as printed by Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	names := make([]string, 0, numKinds)
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("fault: unknown kind %q (known: %s)", s, strings.Join(names, ", "))
}

// MachineSurface reports whether the kind perturbs real scheduler state
// (detected by the watchdog) rather than the event stream (detected by
// the checker).
func (k Kind) MachineSurface() bool {
	return k == DroppedWakeup || k == LostReplay
}

// Injector is core.Hooks middleware that injects exactly one fault of the
// configured kind once the trigger point is reached, forwarding all
// events (faulted or not) to the wrapped hook set.
type Injector struct {
	kind  Kind
	inner core.Hooks
	sch   sched.Engine
	// trigger is the number of commits to pass cleanly before injecting.
	trigger int64
	// mopModel selects the formation-report variant of SwappedMOPPair.
	mopModel bool

	commits int64
	fired   bool
	armed   bool // LostReplay: suppression handed to the scheduler

	// held is the buffered commit event for the SwappedMOPPair fallback;
	// heldDyn keeps a stable copy of its dynamic instruction.
	held    *core.CommitEvent
	heldDyn functional.DynInst
}

var _ core.Hooks = (*Injector)(nil)

// NewInjector wraps inner with a single-shot fault of the given kind.
// sch is the scheduler of the core the injector is attached to (needed
// for machine-surface faults; may be nil for event faults). The fault
// arms after trigger commits; mopModel selects the macro-op variant of
// SwappedMOPPair.
func NewInjector(kind Kind, inner core.Hooks, sch sched.Engine, trigger int64, mopModel bool) *Injector {
	return &Injector{kind: kind, inner: inner, sch: sch, trigger: trigger, mopModel: mopModel}
}

// Fired reports whether the fault has actually been injected. A campaign
// cell whose fault never fired (e.g. LostReplay on a run with no replays
// after the trigger) is inconclusive rather than a detection failure.
func (j *Injector) Fired() bool {
	if j.kind == LostReplay {
		// Armed suppression only becomes a fault when a replay is lost.
		return j.sch != nil && j.sch.FaultReplaySuppressed()
	}
	return j.fired
}

// OnIssue implements core.Hooks.
func (j *Injector) OnIssue(ev *core.IssueEvent) error {
	return j.inner.OnIssue(ev)
}

// OnCycle implements core.Hooks; machine-surface faults are injected here
// because they act on scheduler state, not on any single event.
func (j *Injector) OnCycle(cycle int64, iqOccupied int) error {
	if j.commits >= j.trigger && j.sch != nil {
		switch j.kind {
		case DroppedWakeup:
			if !j.fired {
				// Retry each cycle until the queue holds a waiting entry
				// with a pending wakeup to drop.
				j.fired = j.sch.FaultDeafen()
			}
		case LostReplay:
			if !j.armed {
				j.sch.FaultSuppressReplay()
				j.armed = true
			}
		}
	}
	return j.inner.OnCycle(cycle, iqOccupied)
}

// OnMOPFormed implements core.Hooks; the macro-op variant of
// SwappedMOPPair corrupts the formation report.
func (j *Injector) OnMOPFormed(entryID int64, seqs []int64) error {
	if j.kind == SwappedMOPPair && j.mopModel && !j.fired &&
		j.commits >= j.trigger && len(seqs) >= 2 {
		j.fired = true
		swapped := append([]int64(nil), seqs...)
		swapped[0], swapped[1] = swapped[1], swapped[0]
		return j.inner.OnMOPFormed(entryID, swapped)
	}
	return j.inner.OnMOPFormed(entryID, seqs)
}

// OnCommit implements core.Hooks; event-surface faults perturb exactly
// one commit event on its way to the wrapped checker.
func (j *Injector) OnCommit(ev *core.CommitEvent) error {
	j.commits++
	at := !j.fired && j.commits > j.trigger
	switch j.kind {
	case CorruptedDestTag:
		if at {
			j.fired = true
			bad := *ev
			bad.EntryID ^= 1 << 40 // far outside any live entry id
			return j.inner.OnCommit(&bad)
		}
	case PrematureCommit:
		if at {
			j.fired = true
			bad := *ev
			bad.EntryFinal = false
			return j.inner.OnCommit(&bad)
		}
	case SkippedCommit:
		if at {
			j.fired = true
			return nil // swallowed: the checker's reference stream now leads
		}
	case SwappedMOPPair:
		if !j.mopModel {
			if at && j.held == nil {
				// Hold this commit back; deliver the next one first. Copy
				// the event and its dynamic instruction, since the core
				// reuses the backing storage after the hook returns.
				held := *ev
				j.heldDyn = *ev.Dyn
				held.Dyn = &j.heldDyn
				j.held = &held
				return nil
			}
			if j.held != nil {
				j.fired = true
				held := j.held
				j.held = nil
				if err := j.inner.OnCommit(ev); err != nil {
					return err
				}
				return j.inner.OnCommit(held)
			}
		}
	}
	return j.inner.OnCommit(ev)
}
