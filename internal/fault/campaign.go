package fault

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/journal"
	"macroop/internal/program"
	"macroop/internal/simerr"
	"macroop/internal/workload"
)

// CampaignConfig parameterizes a fault-injection campaign: the cross
// product of benchmarks, scheduler models and fault kinds, each run once
// with a single injected fault.
type CampaignConfig struct {
	// Benchmarks are workload names (workload.ByName).
	Benchmarks []string
	// Scheds are the scheduler models to cover.
	Scheds []config.SchedModel
	// Faults are the kinds to inject (default: all).
	Faults []Kind
	// MaxInsts is the per-cell instruction budget.
	MaxInsts int64
	// TriggerCommits is how many commits pass cleanly before injection.
	TriggerCommits int64
	// WatchdogCycles is the forward-progress window for each cell; keep it
	// small (a few thousand cycles) so starvation faults are flagged fast.
	WatchdogCycles int

	// Journal, when set, makes the campaign crash-consistent: every
	// finished cell's outcome is durably appended, already-journaled cells
	// are skipped on re-run, and cells interrupted by ctx cancellation are
	// left unjournaled so a resumed campaign re-runs exactly them.
	Journal *journal.Journal
}

// DefaultCampaign returns the configuration the repository's own
// verification uses: three benchmarks with distinct memory behaviour
// (ALU-heavy gzip, pointer-chasing mcf, branchy twolf), all five
// scheduler models, all fault kinds, a 20k-instruction budget and a
// 3000-cycle watchdog.
func DefaultCampaign() CampaignConfig {
	return CampaignConfig{
		Benchmarks: []string{"gzip", "mcf", "twolf"},
		Scheds: []config.SchedModel{
			config.SchedBase,
			config.SchedTwoCycle,
			config.SchedMOP,
			config.SchedSelectFreeSquashDep,
			config.SchedSelectFreeScoreboard,
		},
		Faults:         Kinds(),
		MaxInsts:       20_000,
		TriggerCommits: 500,
		WatchdogCycles: 3000,
	}
}

// Outcome is one campaign cell's result.
type Outcome struct {
	Bench string
	Sched config.SchedModel
	Fault Kind
	// Fired is whether the fault was actually injected (a LostReplay cell
	// with no replay after the trigger, for instance, never fires).
	Fired bool
	// Detected is whether the run surfaced a typed error.
	Detected bool
	// DetectedBy classifies the detector when Detected (KindCheckFailed =
	// lockstep checker, KindDeadlock/KindLivelock = watchdog/scheduler).
	DetectedBy simerr.Kind
	Err        error
}

func (o Outcome) String() string {
	state := "UNDETECTED"
	switch {
	case !o.Fired:
		state = "not-fired"
	case o.Detected:
		state = "detected by " + o.DetectedBy.String()
	}
	return fmt.Sprintf("%-8s %-24s %-20s %s", o.Bench, o.Sched, o.Fault, state)
}

// CampaignResult aggregates a campaign's outcomes.
type CampaignResult struct {
	Outcomes []Outcome
	// Executed counts cells actually simulated by this run (cells
	// reconstituted from the journal are not counted) — the observable
	// the resume tests assert on.
	Executed int
}

// Escapes returns the cells where a fault fired and was NOT detected —
// the verification layer's misses. An empty slice is the pass condition.
func (r *CampaignResult) Escapes() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Fired && !o.Detected {
			out = append(out, o)
		}
	}
	return out
}

// Unfired returns the cells whose fault never injected (inconclusive).
func (r *CampaignResult) Unfired() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if !o.Fired {
			out = append(out, o)
		}
	}
	return out
}

// String renders the per-cell table plus a summary line.
func (r *CampaignResult) String() string {
	var b strings.Builder
	for _, o := range r.Outcomes {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d cells: %d detected, %d escaped, %d not fired\n",
		len(r.Outcomes), len(r.Outcomes)-len(r.Escapes())-len(r.Unfired()),
		len(r.Escapes()), len(r.Unfired()))
	return b.String()
}

// RunCampaign executes the full cross product. See RunCampaignContext.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext executes the full cross product. The returned error
// covers only campaign setup (unknown benchmark, generation failure) and
// interruption; detection misses are data, reported in the result for the
// caller to assert on.
//
// With cfg.Journal set the campaign resumes: cells whose outcome is
// already journaled are reconstituted instead of re-run, and every cell
// finished by this run is journaled as it completes. Cancelling ctx stops
// the campaign after the in-flight cell, leaves that cell unjournaled,
// and returns the partial result together with ctx's error.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	if len(cfg.Faults) == 0 {
		cfg.Faults = Kinds()
	}
	progs := make(map[string]*program.Program, len(cfg.Benchmarks))
	for _, name := range cfg.Benchmarks {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := workload.Generate(prof)
		if err != nil {
			return nil, err
		}
		progs[name] = prog
	}
	res := &CampaignResult{}
	for _, bench := range cfg.Benchmarks {
		for _, sm := range cfg.Scheds {
			for _, fk := range cfg.Faults {
				if rec, ok := journaledOutcome(cfg, bench, sm, fk); ok {
					res.Outcomes = append(res.Outcomes, rec.outcome(bench, sm, fk))
					continue
				}
				if ctx.Err() != nil {
					return res, ctx.Err()
				}
				o := runCell(ctx, cfg, progs[bench], bench, sm, fk)
				if ctx.Err() != nil {
					// Interrupted mid-cell: the outcome is an artifact of
					// cancellation, not a detection verdict. Leave it
					// unjournaled and unreported so resume re-runs it.
					return res, ctx.Err()
				}
				if err := journalOutcome(cfg, bench, sm, fk, o); err != nil {
					return res, fmt.Errorf("fault: journal append: %w", err)
				}
				res.Outcomes = append(res.Outcomes, o)
				res.Executed++
			}
		}
	}
	return res, nil
}

// outcomeRecord is the journaled form of one campaign cell's Outcome.
// Bench/sched/fault live in the journal key, not the record.
type outcomeRecord struct {
	Fired       bool
	Detected    bool
	DetectedBy  string `json:",omitempty"` // simerr.Kind name
	ErrMsg      string `json:",omitempty"`
	Fingerprint string `json:",omitempty"`
}

// outcome rebuilds the in-memory Outcome, with a typed, classifiable
// error standing in for the original.
func (r *outcomeRecord) outcome(bench string, sm config.SchedModel, fk Kind) Outcome {
	o := Outcome{Bench: bench, Sched: sm, Fault: fk, Fired: r.Fired, Detected: r.Detected}
	if r.Detected {
		if k, err := simerr.ParseKind(r.DetectedBy); err == nil {
			o.DetectedBy = k
		}
		o.Err = simerr.Journaled(o.DetectedBy, r.ErrMsg, r.Fingerprint)
	}
	return o
}

// cellKey identifies a campaign cell across runs; the trailing
// fingerprint covers the parameters that change what the cell computes,
// so editing the campaign config invalidates stale journal entries.
func cellKey(cfg CampaignConfig, bench string, sm config.SchedModel, fk Kind) string {
	h := simerr.Fingerprint(fmt.Sprint(cfg.MaxInsts), fmt.Sprint(cfg.TriggerCommits), fmt.Sprint(cfg.WatchdogCycles))
	return "fault|" + bench + "|" + sm.String() + "|" + fk.String() + "|" + h
}

func journaledOutcome(cfg CampaignConfig, bench string, sm config.SchedModel, fk Kind) (*outcomeRecord, bool) {
	if cfg.Journal == nil {
		return nil, false
	}
	data, ok := cfg.Journal.Get(cellKey(cfg, bench, sm, fk))
	if !ok {
		return nil, false
	}
	var rec outcomeRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false // undecodable record: re-run the cell
	}
	return &rec, true
}

func journalOutcome(cfg CampaignConfig, bench string, sm config.SchedModel, fk Kind, o Outcome) error {
	if cfg.Journal == nil {
		return nil
	}
	rec := outcomeRecord{Fired: o.Fired, Detected: o.Detected}
	if o.Detected {
		rec.DetectedBy = o.DetectedBy.String()
		rec.ErrMsg = o.Err.Error()
		rec.Fingerprint = simerr.FingerprintOf(o.Err)
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	return cfg.Journal.Append(cellKey(cfg, bench, sm, fk), data)
}

// runCell runs one benchmark × scheduler × fault combination with the
// production checker attached behind the injector.
func runCell(ctx context.Context, cfg CampaignConfig, prog *program.Program, bench string, sm config.SchedModel, fk Kind) Outcome {
	o := Outcome{Bench: bench, Sched: sm, Fault: fk}
	m := config.Default().WithSched(sm).WithWatchdog(cfg.WatchdogCycles)
	c, err := core.New(m, prog)
	if err != nil {
		o.Err = err
		return o
	}
	chk := checker.New(prog, m.IQEntries, cfg.MaxInsts)
	inj := NewInjector(fk, chk, c.Scheduler(), cfg.TriggerCommits, sm == config.SchedMOP)
	c.SetHooks(inj)
	_, err = c.RunContext(ctx, cfg.MaxInsts)
	o.Fired = inj.Fired()
	o.Err = err
	if err != nil {
		o.Detected = true
		o.DetectedBy, _ = simerr.KindOf(err)
	}
	return o
}
