package fault

import (
	"fmt"
	"strings"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/program"
	"macroop/internal/simerr"
	"macroop/internal/workload"
)

// CampaignConfig parameterizes a fault-injection campaign: the cross
// product of benchmarks, scheduler models and fault kinds, each run once
// with a single injected fault.
type CampaignConfig struct {
	// Benchmarks are workload names (workload.ByName).
	Benchmarks []string
	// Scheds are the scheduler models to cover.
	Scheds []config.SchedModel
	// Faults are the kinds to inject (default: all).
	Faults []Kind
	// MaxInsts is the per-cell instruction budget.
	MaxInsts int64
	// TriggerCommits is how many commits pass cleanly before injection.
	TriggerCommits int64
	// WatchdogCycles is the forward-progress window for each cell; keep it
	// small (a few thousand cycles) so starvation faults are flagged fast.
	WatchdogCycles int
}

// DefaultCampaign returns the configuration the repository's own
// verification uses: three benchmarks with distinct memory behaviour
// (ALU-heavy gzip, pointer-chasing mcf, branchy twolf), all five
// scheduler models, all fault kinds, a 20k-instruction budget and a
// 3000-cycle watchdog.
func DefaultCampaign() CampaignConfig {
	return CampaignConfig{
		Benchmarks: []string{"gzip", "mcf", "twolf"},
		Scheds: []config.SchedModel{
			config.SchedBase,
			config.SchedTwoCycle,
			config.SchedMOP,
			config.SchedSelectFreeSquashDep,
			config.SchedSelectFreeScoreboard,
		},
		Faults:         Kinds(),
		MaxInsts:       20_000,
		TriggerCommits: 500,
		WatchdogCycles: 3000,
	}
}

// Outcome is one campaign cell's result.
type Outcome struct {
	Bench string
	Sched config.SchedModel
	Fault Kind
	// Fired is whether the fault was actually injected (a LostReplay cell
	// with no replay after the trigger, for instance, never fires).
	Fired bool
	// Detected is whether the run surfaced a typed error.
	Detected bool
	// DetectedBy classifies the detector when Detected (KindCheckFailed =
	// lockstep checker, KindDeadlock/KindLivelock = watchdog/scheduler).
	DetectedBy simerr.Kind
	Err        error
}

func (o Outcome) String() string {
	state := "UNDETECTED"
	switch {
	case !o.Fired:
		state = "not-fired"
	case o.Detected:
		state = "detected by " + o.DetectedBy.String()
	}
	return fmt.Sprintf("%-8s %-24s %-20s %s", o.Bench, o.Sched, o.Fault, state)
}

// CampaignResult aggregates a campaign's outcomes.
type CampaignResult struct {
	Outcomes []Outcome
}

// Escapes returns the cells where a fault fired and was NOT detected —
// the verification layer's misses. An empty slice is the pass condition.
func (r *CampaignResult) Escapes() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.Fired && !o.Detected {
			out = append(out, o)
		}
	}
	return out
}

// Unfired returns the cells whose fault never injected (inconclusive).
func (r *CampaignResult) Unfired() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if !o.Fired {
			out = append(out, o)
		}
	}
	return out
}

// String renders the per-cell table plus a summary line.
func (r *CampaignResult) String() string {
	var b strings.Builder
	for _, o := range r.Outcomes {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d cells: %d detected, %d escaped, %d not fired\n",
		len(r.Outcomes), len(r.Outcomes)-len(r.Escapes())-len(r.Unfired()),
		len(r.Escapes()), len(r.Unfired()))
	return b.String()
}

// RunCampaign executes the full cross product. The returned error covers
// only campaign setup (unknown benchmark, generation failure); detection
// misses are data, reported in the result for the caller to assert on.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if len(cfg.Faults) == 0 {
		cfg.Faults = Kinds()
	}
	progs := make(map[string]*program.Program, len(cfg.Benchmarks))
	for _, name := range cfg.Benchmarks {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := workload.Generate(prof)
		if err != nil {
			return nil, err
		}
		progs[name] = prog
	}
	res := &CampaignResult{}
	for _, bench := range cfg.Benchmarks {
		for _, sm := range cfg.Scheds {
			for _, fk := range cfg.Faults {
				o := runCell(cfg, progs[bench], bench, sm, fk)
				res.Outcomes = append(res.Outcomes, o)
			}
		}
	}
	return res, nil
}

// runCell runs one benchmark × scheduler × fault combination with the
// production checker attached behind the injector.
func runCell(cfg CampaignConfig, prog *program.Program, bench string, sm config.SchedModel, fk Kind) Outcome {
	o := Outcome{Bench: bench, Sched: sm, Fault: fk}
	m := config.Default().WithSched(sm).WithWatchdog(cfg.WatchdogCycles)
	c, err := core.New(m, prog)
	if err != nil {
		o.Err = err
		return o
	}
	chk := checker.New(prog, m.IQEntries, cfg.MaxInsts)
	inj := NewInjector(fk, chk, c.Scheduler(), cfg.TriggerCommits, sm == config.SchedMOP)
	c.SetHooks(inj)
	_, err = c.Run(cfg.MaxInsts)
	o.Fired = inj.Fired()
	o.Err = err
	if err != nil {
		o.Detected = true
		o.DetectedBy, _ = simerr.KindOf(err)
	}
	return o
}
