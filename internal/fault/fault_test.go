package fault

import (
	"errors"
	"strings"
	"testing"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/simerr"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("no-such-fault"); err == nil {
		t.Error("unknown fault name accepted")
	}
}

func TestMachineSurfaceClassification(t *testing.T) {
	want := map[Kind]bool{
		DroppedWakeup:    true,
		LostReplay:       true,
		CorruptedDestTag: false,
		SwappedMOPPair:   false,
		PrematureCommit:  false,
		SkippedCommit:    false,
	}
	for k, w := range want {
		if k.MachineSurface() != w {
			t.Errorf("%v.MachineSurface() = %v, want %v", k, !w, w)
		}
	}
}

// runOneCell injects one fault into one benchmark/scheduler run and
// returns the run error and whether the fault fired.
func runOneCell(t *testing.T, bench string, sm config.SchedModel, fk Kind) (error, bool) {
	t.Helper()
	prog := workloadtest.ByName(t, bench)
	m := config.Default().WithSched(sm).WithWatchdog(3000)
	c, err := core.New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	chk := checker.New(prog, m.IQEntries, 20_000)
	inj := NewInjector(fk, chk, c.Scheduler(), 500, sm == config.SchedMOP)
	c.SetHooks(inj)
	_, err = c.Run(20_000)
	return err, inj.Fired()
}

// TestFaultRouting verifies each fault kind lands on its designed
// detector: machine faults on the watchdog, event faults on the checker.
func TestFaultRouting(t *testing.T) {
	cases := []struct {
		fk       Kind
		sentinel error
	}{
		{DroppedWakeup, simerr.ErrDeadlock},
		{LostReplay, simerr.ErrDeadlock},
		{CorruptedDestTag, simerr.ErrCheckFailed},
		{SwappedMOPPair, simerr.ErrCheckFailed},
		{PrematureCommit, simerr.ErrCheckFailed},
		{SkippedCommit, simerr.ErrCheckFailed},
	}
	for _, c := range cases {
		err, fired := runOneCell(t, "gzip", config.SchedMOP, c.fk)
		if !fired {
			t.Errorf("%v: fault never fired", c.fk)
			continue
		}
		if !errors.Is(err, c.sentinel) {
			t.Errorf("%v: error %v does not match expected detector %v", c.fk, err, c.sentinel)
		}
	}
}

// TestDeadlockDumpHasPipelineState: a starvation fault's deadlock error
// must carry a usable diagnostic dump.
func TestDeadlockDumpHasPipelineState(t *testing.T) {
	err, fired := runOneCell(t, "gzip", config.SchedBase, DroppedWakeup)
	if !fired || !errors.Is(err, simerr.ErrDeadlock) {
		t.Fatalf("fired=%v err=%v", fired, err)
	}
	dump := simerr.DumpOf(err)
	for _, want := range []string{"ROB", "IQ", "entry"} {
		if !strings.Contains(dump, want) {
			t.Errorf("deadlock dump missing %q:\n%s", want, dump)
		}
	}
}

// TestCleanRunStaysClean: the injector with a never-reached trigger must
// be fully transparent — the checked run succeeds.
func TestCleanRunStaysClean(t *testing.T) {
	prog := workloadtest.ByName(t, "gzip")
	m := config.Default()
	c, err := core.New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	chk := checker.New(prog, m.IQEntries, 10_000)
	inj := NewInjector(SkippedCommit, chk, c.Scheduler(), 1<<40, false)
	c.SetHooks(inj)
	if _, err := c.Run(10_000); err != nil {
		t.Fatalf("transparent injector broke a clean run: %v", err)
	}
	if inj.Fired() {
		t.Error("fault fired below trigger")
	}
}

// TestCampaignFullDetection is the headline guarantee of ISSUE 2: every
// injected fault across ≥3 benchmarks × all 5 scheduler models × all 6
// fault kinds is flagged by the checker or the watchdog as a typed
// error — 100% detection, no escapes, no crashes.
func TestCampaignFullDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is 90 simulations")
	}
	cfg := DefaultCampaign()
	if len(cfg.Benchmarks) < 3 || len(cfg.Scheds) != 5 || len(cfg.Faults) != 6 {
		t.Fatalf("campaign shape too small: %+v", cfg)
	}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cfg.Benchmarks) * len(cfg.Scheds) * len(cfg.Faults); len(res.Outcomes) != n {
		t.Fatalf("ran %d cells, want %d", len(res.Outcomes), n)
	}
	for _, o := range res.Unfired() {
		t.Errorf("fault never fired: %s", o)
	}
	for _, o := range res.Escapes() {
		t.Errorf("ESCAPE: %s (err=%v)", o, o.Err)
	}
	// Every outcome must be a typed simulation error, never a bare one.
	for _, o := range res.Outcomes {
		if o.Err == nil {
			continue
		}
		if _, ok := simerr.KindOf(o.Err); !ok {
			t.Errorf("%s: untyped error %v", o, o.Err)
		}
	}
	// Machine faults must be caught by forward-progress machinery, event
	// faults by the differential checker.
	for _, o := range res.Outcomes {
		if !o.Detected {
			continue
		}
		if o.Fault.MachineSurface() {
			if o.DetectedBy != simerr.KindDeadlock && o.DetectedBy != simerr.KindLivelock {
				t.Errorf("%s: machine fault detected by %v", o, o.DetectedBy)
			}
		} else if o.DetectedBy != simerr.KindCheckFailed {
			t.Errorf("%s: event fault detected by %v", o, o.DetectedBy)
		}
	}
	t.Logf("campaign:\n%s", res)
}

// TestCampaignUnknownBenchmark: setup failures surface as errors, not
// panics or empty results.
func TestCampaignUnknownBenchmark(t *testing.T) {
	cfg := DefaultCampaign()
	cfg.Benchmarks = []string{"no-such-benchmark"}
	if _, err := RunCampaign(cfg); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := workload.ByName("no-such-benchmark"); err == nil {
		t.Fatal("workload.ByName inconsistent with campaign validation")
	}
}
