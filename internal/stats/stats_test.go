package stats

import (
	"strings"
	"testing"
)

func TestCountersOrderAndValues(t *testing.T) {
	c := NewCounters()
	c.Inc("b")
	c.Add("a", 5)
	c.Inc("b")
	if c.Get("b") != 2 || c.Get("a") != 5 || c.Get("zzz") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("first-increment order lost: %v", names)
	}
	if !strings.Contains(c.String(), "b") {
		t.Fatal("String missing counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(3, 7)
	for _, v := range []int64{1, 2, 3, 4, 7, 8, 100} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Bucket(0) != 3 || h.Bucket(1) != 2 || h.Bucket(2) != 2 {
		t.Fatalf("buckets: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2))
	}
	if h.Fraction(0) < 0.42 || h.Fraction(0) > 0.43 {
		t.Fatalf("fraction %v", h.Fraction(0))
	}
	if h.Mean() != 125.0/7 {
		t.Fatalf("mean %v", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.Mean() != 0 || h.Fraction(0) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds accepted")
		}
	}()
	NewHistogram(5, 3)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "ipc")
	tb.AddRow("gzip", 1.234567)
	tb.AddRow("a-very-long-benchmark-name", 2)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("float not formatted to 3 places:\n%s", out)
	}
	if tb.NumRows() != 2 || tb.Row(0)[0] != "gzip" {
		t.Error("row accessors wrong")
	}
	// Column alignment: header and separator as wide as the longest cell.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count %d", len(lines))
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
	if Pct(1, 4) != 25 || Pct(3, 0) != 0 {
		t.Fatal("Pct wrong")
	}
}
