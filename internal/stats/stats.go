// Package stats provides the counters, histograms and table formatting
// used by the simulator and by the paper-reproduction harness.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"macroop/internal/simerr"
)

// Counters is an ordered named-counter set. Order of first increment is
// preserved so reports are stable and deterministic.
type Counters struct {
	names  []string
	values map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]int64)}
}

// Add increments the named counter by n, creating it on first use.
func (c *Counters) Add(name string, n int64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += n
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 { return c.values[name] }

// Names returns the counter names in first-increment order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// String renders all counters, one per line.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.names {
		fmt.Fprintf(&b, "%-32s %12d\n", n, c.values[n])
	}
	return b.String()
}

// Histogram is an integer-valued histogram with explicit bucket upper
// bounds; values above the last bound land in an overflow bucket.
type Histogram struct {
	bounds []int64 // inclusive upper bounds, ascending
	counts []int64 // len(bounds)+1, last is overflow
	total  int64
	sum    int64
}

// NewHistogram creates a histogram with the given inclusive upper bounds,
// which must be strictly ascending.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(simerr.Internalf(simerr.Context{},
				"stats: histogram bounds must be strictly ascending (bound %d: %d <= %d)", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.total++
	h.sum += v
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
}

// Total returns the number of samples.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Bucket returns the count of the i-th bucket; i == len(bounds) is the
// overflow bucket.
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Table accumulates rows and renders a fixed-width text table, used to
// print the paper's figures as row series.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th row's cells.
func (t *Table) Row(i int) []string { return t.rows[i] }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Ratio returns a/b, or 0 when b is zero; a convenience for rate metrics.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct returns 100*a/b, or 0 when b is zero.
func Pct(a, b int64) float64 { return 100 * Ratio(a, b) }
