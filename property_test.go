package macroop_test

import (
	"testing"

	"macroop"
)

// TestPropertyMOPPreservesArchState is the paper's ground rule as an
// executable property: macro-op scheduling relaxes *when* instructions
// issue, never *what* they compute. For every benchmark, a run with MOP
// scheduling and one without must commit identical architectural state —
// the lockstep checker's checksums agree — even though the timing
// (cycle counts) differs.
func TestPropertyMOPPreservesArchState(t *testing.T) {
	const insts = 50_000
	benches := macroop.Benchmarks()
	if testing.Short() {
		benches = benches[:3]
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			prog, err := macroop.GenerateBenchmark(bench)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			base := macroop.DefaultMachine().WithSched(macroop.SchedBase)
			mop := macroop.DefaultMachine().WithMOP(macroop.DefaultMOPConfig())

			resBase, sumBase, err := macroop.SimulateChecked(base, prog, insts)
			if err != nil {
				t.Fatalf("base run: %v", err)
			}
			resMOP, sumMOP, err := macroop.SimulateChecked(mop, prog, insts)
			if err != nil {
				t.Fatalf("MOP run: %v", err)
			}
			if sumBase.Checksum != sumMOP.Checksum {
				t.Errorf("architectural state diverged: base checksum %016x, MOP checksum %016x",
					sumBase.Checksum, sumMOP.Checksum)
			}
			if resMOP.MOPsFormed == 0 {
				t.Error("MOP run formed no macro-ops; property is vacuous")
			}
			if resBase.Cycles == resMOP.Cycles {
				t.Logf("note: base and MOP runs took identical cycle counts (%d)", resBase.Cycles)
			}
		})
	}
}
