package macroop_test

import (
	"context"
	"errors"
	"testing"

	"macroop"
	"macroop/internal/simerr"
)

// TestSimulateContextCancellation: a cancelled context stops the
// simulation within one poll window instead of running out the full
// instruction budget.
func TestSimulateContextCancellation(t *testing.T) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = macroop.SimulateContext(ctx, macroop.DefaultMachine(), prog, 1<<40)
	if !errors.Is(err, macroop.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	var se *simerr.Error
	if !errors.As(err, &se) {
		t.Fatalf("cancellation error is not a *simerr.Error: %v", err)
	}
	if se.Ctx.Cycle > 2048 {
		t.Errorf("cancelled at cycle %d; want within one poll window of the pre-cancelled context", se.Ctx.Cycle)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation cause not preserved: %v", err)
	}
}

// TestPreCancelledContextStopsBeforeCycleZero: a context that is already
// dead when the simulation starts must stop it before cycle 0, not after
// the first poll window. Regression test: RunContext used to enter the
// cycle loop and simulate up to ctxPollCycles (1024) cycles before the
// first ctx.Err() check.
func TestPreCancelledContextStopsBeforeCycleZero(t *testing.T) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"SimulateContext", func() error {
			_, err := macroop.SimulateContext(ctx, macroop.DefaultMachine(), prog, 1<<40)
			return err
		}},
		{"SimulateCheckedContext", func() error {
			_, _, err := macroop.SimulateCheckedContext(ctx, macroop.DefaultMachine(), prog, 1<<40)
			return err
		}},
	} {
		err := tc.run()
		if !errors.Is(err, macroop.ErrCancelled) {
			t.Fatalf("%s: want ErrCancelled, got %v", tc.name, err)
		}
		var se *simerr.Error
		if !errors.As(err, &se) {
			t.Fatalf("%s: not a *simerr.Error: %v", tc.name, err)
		}
		if se.Ctx.Cycle != 0 || se.Ctx.Committed != 0 {
			t.Errorf("%s: pre-cancelled run reached cycle %d (%d committed); want cycle 0",
				tc.name, se.Ctx.Cycle, se.Ctx.Committed)
		}
	}
}

// TestWatchdogFlagsStalledPipeline: a watchdog window shorter than the
// pipeline fill latency reports a deadlock with a diagnostic dump — the
// machine never gets to its first commit inside the window.
func TestWatchdogFlagsStalledPipeline(t *testing.T) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	m := macroop.DefaultMachine()
	m.WatchdogCycles = 10
	_, err = macroop.Simulate(m, prog, 10_000)
	if !errors.Is(err, macroop.ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if dump := macroop.ErrorDump(err); dump == "" {
		t.Error("deadlock error carries no diagnostic dump")
	}
}

// TestWatchdogDisabled: a negative window turns the watchdog off and the
// same run completes.
func TestWatchdogDisabled(t *testing.T) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	m := macroop.DefaultMachine()
	m.WatchdogCycles = -1
	res, err := macroop.Simulate(m, prog, 10_000)
	if err != nil || res.Committed == 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// TestReplayStormLivelock: an absurdly low replay-storm threshold turns
// ordinary replays into a typed livelock report. The scoreboard
// select-free model is used because its pileup victims replay the same
// entry repeatedly, which is exactly the storm shape the guard bounds.
func TestReplayStormLivelock(t *testing.T) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	m := macroop.DefaultMachine().WithSched(macroop.SchedSelectFreeScoreboard)
	m.ReplayStormLimit = 1
	_, err = macroop.Simulate(m, prog, 200_000)
	if !errors.Is(err, macroop.ErrLivelock) {
		t.Fatalf("want ErrLivelock, got %v", err)
	}
	if dump := macroop.ErrorDump(err); dump == "" {
		t.Error("livelock error carries no entry dump")
	}
}

// TestSimulateCheckedContext: the checked variant both verifies commits
// and honours cancellation.
func TestSimulateCheckedContext(t *testing.T) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	res, sum, err := macroop.SimulateCheckedContext(context.Background(), macroop.DefaultMachine(), prog, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || sum.Commits == 0 {
		t.Fatalf("empty checked run: res=%+v sum=%+v", res, sum)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := macroop.SimulateCheckedContext(ctx, macroop.DefaultMachine(), prog, 1<<40); !errors.Is(err, macroop.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
}
