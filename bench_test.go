// Benchmark harness: one testing.B benchmark per table/figure of the
// paper. Each benchmark runs the corresponding experiment at a reduced
// per-simulation budget and reports the generated rows via b.Log, plus
// simulated-instruction throughput, so
//
//	go test -bench=. -benchmem
//
// regenerates every series the paper plots. For publication-scale numbers
// use cmd/moppaper with a larger -insts budget.
package macroop_test

import (
	"testing"

	"macroop"
)

// benchInsts is the per-simulation instruction budget used in benchmarks:
// small enough to keep the full suite to minutes, large enough for the
// relative results to stabilize.
const benchInsts = 120_000

func runExperiment(b *testing.B, f func(*macroop.Experiments) (*macroop.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := macroop.NewExperiments(benchInsts)
		tab, err := f(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.Table2() })
}

func BenchmarkFigure6(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.Figure6() })
}

func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.Figure7() })
}

func BenchmarkFigure13(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.Figure13() })
}

func BenchmarkFigure14(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.Figure14() })
}

func BenchmarkFigure15(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.Figure15() })
}

func BenchmarkFigure16(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.Figure16() })
}

func BenchmarkDetectionDelayAblation(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.DetectionDelay() })
}

func BenchmarkLastArrivingAblation(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.LastArriving() })
}

func BenchmarkIndependentMOPAblation(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.IndependentMOPs() })
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per second) for each scheduler model on one benchmark.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		b.Fatal(err)
	}
	models := []struct {
		name string
		m    macroop.Machine
	}{
		{"base", macroop.DefaultMachine().WithSched(macroop.SchedBase)},
		{"twocycle", macroop.DefaultMachine().WithSched(macroop.SchedTwoCycle)},
		{"mop", macroop.DefaultMachine().WithMOP(macroop.DefaultMOPConfig())},
		{"selectfree", macroop.DefaultMachine().WithSched(macroop.SchedSelectFreeScoreboard)},
	}
	for _, mc := range models {
		b.Run(mc.name, func(b *testing.B) {
			var insts int64
			for i := 0; i < b.N; i++ {
				res, err := macroop.Simulate(mc.m, prog, 100_000)
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Committed
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "simInsts/s")
		})
	}
}

// BenchmarkWorkloadGeneration measures program synthesis cost.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := macroop.GenerateBenchmark("gcc"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMOPSizeExtension(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.MOPSize() })
}

func BenchmarkHeuristicCoverage(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.HeuristicCoverage() })
}

func BenchmarkQueueSweep(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.QueueSweep("gap") })
}

func BenchmarkWidthSweep(b *testing.B) {
	runExperiment(b, func(r *macroop.Experiments) (*macroop.Table, error) { return r.WidthSweep("gap") })
}
