module macroop

go 1.22
